package central

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"crew/internal/cerrors"
	"crew/internal/coord"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// SystemConfig parameterizes a complete centralized deployment: one engine
// plus its application agents, on a private network.
type SystemConfig struct {
	Library   *model.Library
	Programs  *model.Registry
	Collector *metrics.Collector
	DB        *wfdb.DB
	// Agents lists agent node names; empty derives them from the library's
	// eligible-agent declarations, defaulting to two agents.
	Agents []string
	// EngineName defaults to "engine".
	EngineName string
	// DisableOCR forces Saga-style recovery (ablation).
	DisableOCR bool
	// Wire selects the transport backend (nil = in-process channels).
	Wire transport.Wire
	Logf func(format string, args ...any)
}

// System is a running centralized WFMS.
type System struct {
	Engine *Engine
	net    *transport.Network
	agents []*Agent
	col    *metrics.Collector
	closed atomic.Bool
}

// NewSystem builds and starts a centralized deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Library == nil {
		return nil, errors.New("central: system needs a library")
	}
	if err := cfg.Library.Validate(); err != nil {
		return nil, err
	}
	if cfg.Programs == nil {
		return nil, errors.New("central: system needs a program registry")
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector()
	}
	if cfg.EngineName == "" {
		cfg.EngineName = "engine"
	}
	agents := cfg.Agents
	if len(agents) == 0 {
		agents = cfg.Library.SortedAgents()
	}
	if len(agents) == 0 {
		agents = []string{"agent1", "agent2"}
	}

	net := transport.NewNetwork(transport.NetworkConfig{Collector: cfg.Collector, Wire: cfg.Wire})
	eng, err := NewEngine(Config{
		Name:       cfg.EngineName,
		Library:    cfg.Library,
		Agents:     agents,
		Programs:   cfg.Programs,
		Collector:  cfg.Collector,
		DB:         cfg.DB,
		DisableOCR: cfg.DisableOCR,
		Logf:       cfg.Logf,
	}, net)
	if err != nil {
		net.Close()
		return nil, err
	}
	eng.SetCoordinator(NewLocalCoordinator(eng, coord.NewTracker(cfg.Library)))

	sys := &System{Engine: eng, net: net, col: cfg.Collector}
	for _, name := range agents {
		ag, err := NewAgent(name, net, cfg.Programs, cfg.Collector)
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("central: agent %s: %w", name, err)
		}
		sys.agents = append(sys.agents, ag)
	}
	return sys, nil
}

// Collector returns the system's metrics collector.
func (s *System) Collector() *metrics.Collector { return s.col }

// Network exposes the transport (tests crash/recover agents through it).
func (s *System) Network() *transport.Network { return s.net }

// Start launches an instance and returns its ID.
func (s *System) Start(workflow string, inputs map[string]expr.Value) (int, error) {
	return s.StartCtx(context.Background(), workflow, inputs)
}

// StartCtx launches an instance and returns its ID. The context gates only
// the admission of the request; a started instance keeps running after ctx
// is cancelled.
func (s *System) StartCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, error) {
	if err := s.admit(ctx, workflow); err != nil {
		return 0, err
	}
	return s.Engine.Start(workflow, inputs)
}

// admit performs the shared pre-flight checks of context-aware calls.
func (s *System) admit(ctx context.Context, workflow string) error {
	if s.closed.Load() {
		return fmt.Errorf("central: %w", cerrors.ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workflow != "" && s.Engine.cfg.Library.Schema(workflow) == nil {
		return fmt.Errorf("central: %w: %q", cerrors.ErrUnknownWorkflow, workflow)
	}
	return nil
}

// StartSeq launches an instance under an externally assigned ID. The global
// sequence number is unused by the centralized architecture; accepting it
// lets concurrent drivers start instances in any order without changing
// where work lands (there is only one engine). A StartSeq racing Close
// fails with cerrors.ErrClosed instead of panicking on the closed transport.
func (s *System) StartSeq(workflow string, id, seq int, inputs map[string]expr.Value) error {
	if s.closed.Load() {
		return fmt.Errorf("central: %w", cerrors.ErrClosed)
	}
	return s.Engine.StartWithID(workflow, id, inputs)
}

// Quiesce blocks until no message is queued, undelivered or still being
// processed anywhere in the deployment.
func (s *System) Quiesce(ctx context.Context) error { return s.net.Quiesce(ctx) }

// Run starts an instance and waits for its terminal status. It wraps RunCtx
// with a deadline context.
func (s *System) Run(workflow string, inputs map[string]expr.Value, timeout time.Duration) (int, wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.RunCtx(ctx, workflow, inputs)
}

// RunCtx starts an instance and waits for its terminal status under ctx.
func (s *System) RunCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, wfdb.Status, error) {
	id, err := s.StartCtx(ctx, workflow, inputs)
	if err != nil {
		return 0, 0, err
	}
	st, err := s.WaitCtx(ctx, workflow, id)
	return id, st, err
}

// Wait blocks until the instance reaches a terminal status. It wraps WaitCtx
// with a deadline context; the deadline surfaces as cerrors.ErrTimeout.
func (s *System) Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.WaitCtx(ctx, workflow, id)
}

// WaitCtx blocks until the instance reaches a terminal status or ctx ends.
// Completion is push-based: the call subscribes to the engine's terminal
// registry and is woken by the closing of the instance's waiter channel —
// no polling and no engine-goroutine round-trip for finished instances.
// A deadline expiry is reported as cerrors.ErrTimeout (errors.Is-matchable);
// a plain cancellation as ctx.Err().
func (s *System) WaitCtx(ctx context.Context, workflow string, id int) (wfdb.Status, error) {
	if err := s.admit(ctx, ""); err != nil {
		return 0, err
	}
	term := s.Engine.Terminal()
	st, done, w, gen := term.Subscribe(workflow, id)
	if done {
		return st, nil
	}
	// Fresh-engine-over-old-database: completions from a previous
	// incarnation exist only as summaries.
	if db := s.Engine.cfg.DB; db != nil {
		if sum, found, _ := db.LoadSummary(workflow, id); found && sum != wfdb.Running {
			term.Unsubscribe(workflow, id, w, gen)
			return sum, nil
		}
	}
	select {
	case <-w.Done():
		return w.Result(), nil
	case <-ctx.Done():
		term.Unsubscribe(workflow, id, w, gen)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return 0, fmt.Errorf("central: %w: %s.%d", cerrors.ErrTimeout, workflow, id)
		}
		return 0, ctx.Err()
	}
}

// Abort requests a user abort.
func (s *System) Abort(workflow string, id int) error { return s.Engine.Abort(workflow, id) }

// ChangeInputs applies a user-initiated input change.
func (s *System) ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	return s.Engine.ChangeInputs(workflow, id, inputs)
}

// Status reports an instance's status.
func (s *System) Status(workflow string, id int) (wfdb.Status, bool) {
	return s.Engine.Status(workflow, id)
}

// Snapshot returns a deep copy of the instance state.
func (s *System) Snapshot(workflow string, id int) (*wfdb.Instance, bool) {
	return s.Engine.Snapshot(workflow, id)
}

// Close shuts the deployment down. Later context-aware calls fail with
// cerrors.ErrClosed.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.net.Close()
	s.Engine.Stop()
	for _, a := range s.agents {
		a.Stop()
	}
}

// HaltNode simulates a process crash of a named node. For the engine this
// discards its volatile state (RestartNode rebuilds it from the WFDB); for
// agents — which are stateless — and unknown names it only parks the node's
// transport queue.
func (s *System) HaltNode(name string) {
	s.net.Crash(name)
	if name == s.Engine.Name() {
		s.Engine.Halt()
	}
}

// RestartNode recovers a node halted by HaltNode: the engine rebuilds from
// the WFDB, the transport delivers the messages parked while it was down.
func (s *System) RestartNode(name string) {
	if name == s.Engine.Name() {
		s.Engine.Restart()
	}
	s.net.Recover(name)
}

// Recover resumes running instances persisted in the system's database — the
// forward recovery of a restarted engine.
func (s *System) Recover() (int, error) { return s.Engine.Recover() }
