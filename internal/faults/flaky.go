package faults

import (
	"fmt"

	"crew/internal/expr"
	"crew/internal/model"
)

// WrapFlaky returns a registry in which every program from reg additionally
// suffers the plan's transient step failures: a seed-chosen fraction (rate)
// of (workflow, instance, step) triples fail their first execution attempt
// with a model.StepFailure. Retries succeed, so the failure exercises the
// rollback/re-execution machinery without changing an instance's final
// outcome. Compensations are never made to fail (the paper assumes
// compensation programs succeed).
//
// The decision is a pure function of (seed, workflow, instance, step), so
// the injected failure set is identical across runs and architectures.
func WrapFlaky(reg *model.Registry, seed int64, rate float64) *model.Registry {
	if rate <= 0 {
		return reg
	}
	out := model.NewRegistry()
	for _, name := range reg.Names() {
		p, _ := reg.Lookup(name)
		out.Register(name, flaky(p, seed, rate))
	}
	return out
}

func flaky(inner model.Program, seed int64, rate float64) model.Program {
	return func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		if (ctx.Mode == model.ModeExecute || ctx.Mode == model.ModeIncremental) &&
			ctx.Attempt == 1 &&
			hash01(seed, "flaky", ctx.Workflow, fmt.Sprint(ctx.Instance), string(ctx.Step)) < rate {
			return nil, model.Fail("injected transient failure")
		}
		return inner(ctx)
	}
}
