package faults

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"crew/internal/metrics"
	"crew/internal/transport"
)

// NodeHooks lets the injector reach into a deployment's scheduling nodes:
// HaltNode discards the named node's volatile state (a crash of the
// scheduler process, not just its network link) and RestartNode rebuilds it
// from the workflow database. Nodes without volatile scheduling state
// (stateless agents) simply ignore both calls. Implementations must not
// block: hooks run on whatever goroutine observed the trigger.
type NodeHooks interface {
	HaltNode(name string)
	RestartNode(name string)
}

// AppliedEvent records one fault event as actually applied.
type AppliedEvent struct {
	Event
	// Seq is the network logical-clock value at application time.
	Seq int64
	// Forced marks a Recover applied by the stall backstop (the network
	// stalled with every in-flight message parked at a crashed node before
	// the scheduled trigger was reached).
	Forced bool
}

// Injector applies a Plan to one deployment. It implements
// transport.FaultPolicy: install it with Network.SetFaultPolicy (or call
// Attach, which also starts the stall backstop). One Injector serves one
// Network; create a fresh one per run.
type Injector struct {
	plan  Plan
	col   *metrics.Collector
	net   *transport.Network
	hooks NodeHooks

	linkCounts []atomic.Int64

	// nextAt caches the trigger of the earliest unapplied event so the
	// per-message fast path is one atomic load.
	nextAt atomic.Int64

	mu      sync.Mutex
	events  []Event
	done    []bool
	down    map[string]int64 // node -> crash seq
	applied []AppliedEvent

	eventCh chan AppliedEvent
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

const maxInt64 = int64(1<<63 - 1)

// NewInjector builds an injector for plan, recording recovery metrics into
// col (which may be nil).
func NewInjector(plan Plan, col *metrics.Collector) (*Injector, error) {
	plan.Normalize()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:       plan,
		col:        col,
		linkCounts: make([]atomic.Int64, len(plan.Links)),
		events:     plan.Events,
		done:       make([]bool, len(plan.Events)),
		down:       make(map[string]int64),
		eventCh:    make(chan AppliedEvent, 256),
	}
	if len(in.events) > 0 {
		in.nextAt.Store(in.events[0].At)
	} else {
		in.nextAt.Store(maxInt64)
	}
	return in, nil
}

// Plan returns the injector's (normalized) plan.
func (in *Injector) Plan() Plan { return in.plan }

// SetHooks installs the deployment's crash-restart hooks. Call before
// Attach.
func (in *Injector) SetHooks(h NodeHooks) { in.hooks = h }

// Events exposes applied fault events as they happen, for harnesses that
// sample system state at crash points. The channel is buffered and never
// blocks the injector; overflow events are dropped.
func (in *Injector) Events() <-chan AppliedEvent { return in.eventCh }

// Attach installs the injector as net's fault policy and starts the stall
// backstop. Call Stop (or close the network) to detach.
func (in *Injector) Attach(net *transport.Network) {
	in.net = net
	net.SetFaultPolicy(in)
	if len(in.events) > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		in.cancel = cancel
		in.wg.Add(1)
		go in.watch(ctx)
	}
}

// Stop detaches the injector from the network and stops the stall backstop.
func (in *Injector) Stop() {
	if in.net != nil {
		in.net.SetFaultPolicy(nil)
	}
	if in.cancel != nil {
		in.cancel()
	}
	in.wg.Wait()
}

// Applied returns the log of fault events as applied, in application order.
func (in *Injector) Applied() []AppliedEvent {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]AppliedEvent, len(in.applied))
	copy(out, in.applied)
	return out
}

// OnMessage implements transport.FaultPolicy.
func (in *Injector) OnMessage(m transport.Message, seq int64) transport.Verdict {
	var v transport.Verdict
	for i := range in.plan.Links {
		f := &in.plan.Links[i]
		if !f.matches(m.From, m.To) {
			continue
		}
		c := in.linkCounts[i].Add(1)
		if f.DropEvery > 0 && c%int64(f.DropEvery) == 0 {
			r := f.Retransmits
			if r <= 0 {
				r = 1
			}
			v.Retransmits += r
		}
		if f.DelayEvery > 0 && c%int64(f.DelayEvery) == 0 && f.Delay > v.Delay {
			v.Delay = f.Delay
		}
	}
	if seq >= in.nextAt.Load() {
		in.applyDue(seq)
	}
	return v
}

// applyDue applies every pending event whose trigger has been reached.
func (in *Injector) applyDue(seq int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, e := range in.events {
		if in.done[i] || e.At > seq {
			continue
		}
		in.applyLocked(i, seq, false)
	}
	in.refreshNextLocked()
}

// applyLocked applies event i. Caller holds in.mu.
func (in *Injector) applyLocked(i int, seq int64, forced bool) {
	e := in.events[i]
	in.done[i] = true
	switch e.Action {
	case Crash:
		if _, alreadyDown := in.down[e.Node]; alreadyDown {
			return
		}
		if in.net != nil {
			in.net.Crash(e.Node)
		}
		if in.hooks != nil {
			in.hooks.HaltNode(e.Node)
		}
		in.down[e.Node] = seq
		in.col.AddCrash()
	case Recover:
		crashSeq, wasDown := in.down[e.Node]
		if !wasDown {
			return
		}
		if in.hooks != nil {
			in.hooks.RestartNode(e.Node)
		}
		if in.net != nil {
			in.net.Recover(e.Node)
		}
		delete(in.down, e.Node)
		in.col.AddRecovery(seq - crashSeq)
	}
	ae := AppliedEvent{Event: e, Seq: seq, Forced: forced}
	in.applied = append(in.applied, ae)
	select {
	case in.eventCh <- ae:
	default:
	}
}

// refreshNextLocked recomputes the earliest unapplied trigger.
func (in *Injector) refreshNextLocked() {
	next := maxInt64
	for i, e := range in.events {
		if !in.done[i] && e.At < next {
			next = e.At
		}
	}
	in.nextAt.Store(next)
}

// exhausted reports whether every scheduled event has been applied.
func (in *Injector) exhausted() bool {
	return in.nextAt.Load() == maxInt64
}

// forceRecovery applies the earliest pending Recover event for a currently
// crashed node, out of schedule. It reports whether it acted.
func (in *Injector) forceRecovery() bool {
	seq := in.net.Seq()
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, e := range in.events {
		if in.done[i] || e.Action != Recover {
			continue
		}
		if _, isDown := in.down[e.Node]; !isDown {
			continue
		}
		in.applyLocked(i, seq, true)
		in.refreshNextLocked()
		return true
	}
	return false
}

// watch is the stall backstop: when the network stalls (every in-flight
// message parked at a crashed node) before a scheduled recovery trigger can
// fire — the network's logical clock only advances on sends, and a dead hub
// stops sends — it forces the next pending recovery so the run always makes
// progress. It exits once every scheduled event has been applied.
func (in *Injector) watch(ctx context.Context) {
	defer in.wg.Done()
	//crew:allow detclock idle-poll pacing of the stall backstop; it fires only while the network is quiescent, so seeded plans and replayed state are unaffected
	idlePoll := time.NewTimer(time.Hour)
	if !idlePoll.Stop() {
		<-idlePoll.C
	}
	for !in.exhausted() {
		stalled, err := in.net.AwaitStall(ctx)
		if err != nil {
			return
		}
		if stalled && in.forceRecovery() {
			continue
		}
		// Idle (nothing in flight yet/anymore), or stalled on a crash we
		// didn't cause: re-check shortly rather than spinning.
		idlePoll.Reset(time.Millisecond)
		select {
		case <-idlePoll.C:
		case <-ctx.Done():
			return
		}
	}
}
