package faults

import (
	"strings"
	"sync"
	"testing"
	"time"

	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
)

func TestChaosPlanDeterministicDigest(t *testing.T) {
	targets := []string{"n1", "n2", "n3"}
	p1 := ChaosPlan(42, targets, 3, 10, 20, 5)
	p2 := ChaosPlan(42, targets, 3, 10, 20, 5)
	if p1.String() != p2.String() {
		t.Errorf("same seed, different plans:\n  %s\n  %s", p1, p2)
	}
	if err := p1.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(p1.Events); got != 6 {
		t.Errorf("3 crashes should yield 6 events, got %d", got)
	}
	if !strings.HasPrefix(p1.String(), "seed=42;") {
		t.Errorf("digest does not lead with the seed: %s", p1)
	}
}

func TestChaosPlanClampsDowntimeBelowSpacing(t *testing.T) {
	p := ChaosPlan(1, []string{"n"}, 2, 10, 5, 50)
	if err := p.Validate(); err != nil {
		t.Fatalf("clamped plan should validate: %v", err)
	}
	for i := 0; i+1 < len(p.Events); i += 2 {
		crash, recover := p.Events[i], p.Events[i+1]
		if d := recover.At - crash.At; d >= 5 {
			t.Errorf("downtime %d not clamped below spacing 5", d)
		}
	}
}

func TestPlanValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"unsorted", Plan{Events: []Event{
			{Action: Crash, Node: "n", At: 5},
			{Action: Recover, Node: "n", At: 3},
		}}},
		{"crash while down", Plan{Events: []Event{
			{Action: Crash, Node: "n", At: 1},
			{Action: Crash, Node: "n", At: 2},
		}}},
		{"recover without crash", Plan{Events: []Event{
			{Action: Recover, Node: "n", At: 1},
		}}},
		{"never recovers", Plan{Events: []Event{
			{Action: Crash, Node: "n", At: 1},
		}}},
		{"nameless event", Plan{Events: []Event{
			{Action: Crash, At: 1},
		}}},
		{"negative link params", Plan{Links: []LinkFault{{DropEvery: -1}}}},
		{"bad fail rate", Plan{StepFailRate: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); err == nil {
				t.Errorf("Validate accepted %q", tc.name)
			}
		})
	}
}

// recordingHooks captures HaltNode/RestartNode calls.
type recordingHooks struct {
	mu    sync.Mutex
	calls []string
}

func (h *recordingHooks) HaltNode(n string) {
	h.mu.Lock()
	h.calls = append(h.calls, "halt:"+n)
	h.mu.Unlock()
}

func (h *recordingHooks) RestartNode(n string) {
	h.mu.Lock()
	h.calls = append(h.calls, "restart:"+n)
	h.mu.Unlock()
}

func (h *recordingHooks) list() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.calls...)
}

func recvOne(t *testing.T, ep *transport.Endpoint) transport.Message {
	t.Helper()
	select {
	case m := <-ep.Inbox():
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return transport.Message{}
	}
}

func TestInjectorAppliesSchedule(t *testing.T) {
	col := metrics.NewCollector()
	net := transport.NewNetwork(transport.NetworkConfig{Collector: col})
	defer net.Close()
	net.MustRegister("a")
	b := net.MustRegister("b")

	plan := Plan{Seed: 1, Events: []Event{
		{Action: Crash, Node: "b", At: 2},
		{Action: Recover, Node: "b", At: 4},
	}}
	in, err := NewInjector(plan, col)
	if err != nil {
		t.Fatal(err)
	}
	hooks := &recordingHooks{}
	in.SetHooks(hooks)
	in.Attach(net)
	defer in.Stop()

	for i := 0; i < 5; i++ {
		//crew:nocharge injector test drives raw traffic; no metrics accounting under test
		if err := net.Send(transport.Message{From: "a", To: "b", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if m := recvOne(t, b); m.Payload.(int) != i {
			t.Fatalf("out of order after crash cycle: got %v at %d", m.Payload, i)
		}
	}
	applied := in.Applied()
	if len(applied) != 2 {
		t.Fatalf("applied %d events, want 2: %v", len(applied), applied)
	}
	if applied[0].Action != Crash || applied[1].Action != Recover {
		t.Errorf("applied order = %v", applied)
	}
	if applied[0].Forced || applied[1].Forced {
		t.Errorf("on-schedule events marked forced: %v", applied)
	}
	if col.Crashes() != 1 || col.Recoveries() != 1 {
		t.Errorf("crashes=%d recoveries=%d, want 1/1", col.Crashes(), col.Recoveries())
	}
	want := []string{"halt:b", "restart:b"}
	if got := hooks.list(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("hooks = %v, want %v", got, want)
	}
}

func TestInjectorLinkDropChargesRetransmits(t *testing.T) {
	col := metrics.NewCollector()
	net := transport.NewNetwork(transport.NetworkConfig{Collector: col})
	defer net.Close()
	net.MustRegister("a")
	b := net.MustRegister("b")

	in, err := NewInjector(Plan{Links: []LinkFault{{From: "a", To: "b", DropEvery: 2, Retransmits: 1}}}, col)
	if err != nil {
		t.Fatal(err)
	}
	in.Attach(net)
	defer in.Stop()

	for i := 0; i < 4; i++ {
		//crew:nocharge injector test drives raw traffic; no metrics accounting under test
		if err := net.Send(transport.Message{From: "a", To: "b", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		recvOne(t, b) // drops are retransmissions, not losses
	}
	if got := col.Retransmits(); got != 2 {
		t.Errorf("retransmits = %d, want 2 (every 2nd of 4 messages)", got)
	}
}

// TestInjectorStallBackstop crashes the only receiver with a recovery
// trigger far beyond the traffic, so the network stalls with all in-flight
// messages parked; the backstop must force the recovery out of schedule.
func TestInjectorStallBackstop(t *testing.T) {
	col := metrics.NewCollector()
	net := transport.NewNetwork(transport.NetworkConfig{Collector: col})
	defer net.Close()
	net.MustRegister("a")
	b := net.MustRegister("b")

	plan := Plan{Events: []Event{
		{Action: Crash, Node: "b", At: 1},
		{Action: Recover, Node: "b", At: 1 << 40},
	}}
	in, err := NewInjector(plan, col)
	if err != nil {
		t.Fatal(err)
	}
	in.Attach(net)
	defer in.Stop()

	//crew:nocharge injector test drives raw traffic; no metrics accounting under test
	if err := net.Send(transport.Message{From: "a", To: "b", Payload: 0}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b) // arrives only after the forced recovery

	deadline := time.Now().Add(2 * time.Second)
	for {
		applied := in.Applied()
		if len(applied) == 2 {
			if !applied[1].Forced {
				t.Errorf("stall recovery not marked forced: %v", applied)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("backstop never fired; applied = %v", applied)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWrapFlakyFailsFirstAttemptOnly(t *testing.T) {
	reg := model.NewRegistry()
	calls := 0
	reg.Register("p", func(*model.ProgramContext) (map[string]expr.Value, error) {
		calls++
		return map[string]expr.Value{"O1": expr.Num(1)}, nil
	})
	wrapped := WrapFlaky(reg, 3, 1.0) // rate 1: every step's first attempt fails
	p, ok := wrapped.Lookup("p")
	if !ok {
		t.Fatal("wrapped registry lost the program")
	}
	ctx := &model.ProgramContext{Workflow: "W", Instance: 1, Step: "S", Mode: model.ModeExecute, Attempt: 1}
	if _, err := p(ctx); err == nil {
		t.Error("first attempt should fail at rate 1")
	}
	if calls != 0 {
		t.Error("inner program reached despite injected failure")
	}
	ctx.Attempt = 2
	if _, err := p(ctx); err != nil {
		t.Errorf("retry failed: %v", err)
	}
	comp := &model.ProgramContext{Workflow: "W", Instance: 1, Step: "S", Mode: model.ModeCompensate, Attempt: 1}
	if _, err := p(comp); err != nil {
		t.Errorf("compensation must never be made to fail: %v", err)
	}
	if same := WrapFlaky(reg, 3, 0); same != reg {
		t.Error("rate 0 should return the registry unchanged")
	}
}
