// Package faults is a seeded, deterministic fault injector for the workflow
// simulator. A Plan composes the fault classes the paper's recovery machinery
// must tolerate — node crash/recover, per-link message drop (with
// retransmission under the reliable transport), per-link latency, and
// transient step-program failures — and an Injector applies the plan to a
// running deployment through the transport's FaultPolicy hook plus
// crash-restart hooks into the scheduling nodes.
//
// Determinism: a plan is a pure function of its seed and shape parameters,
// crash/recover events trigger at fixed points of the network's logical
// clock (the global accepted-message sequence), and drop/delay faults fire
// on periodic per-link counters. Two runs of the same workload with the same
// plan therefore apply the same fault schedule, even though goroutine
// interleaving differs.
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Action is what a scheduled fault event does to its node.
type Action int

const (
	// Crash marks the node down: the transport parks its inbound messages
	// and the node's scheduler (if any) discards volatile state.
	Crash Action = iota
	// Recover marks the node up again: parked messages flood in and the
	// scheduler rebuilds volatile state from the workflow database.
	Recover
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Event schedules a crash or recovery of one node at a point of the
// network's logical clock.
type Event struct {
	Action Action
	Node   string
	// At is the trigger: the event fires when the network's accepted-message
	// sequence reaches At. If the system stalls before At is reached (every
	// in-flight message parked at a crashed node), pending Recover events
	// fire early — the injector's stall backstop — so a plan can never
	// deadlock a run.
	At int64
}

// LinkFault injects periodic message-level faults on a link. From/To select
// the link; an empty string is a wildcard. Counters are per LinkFault, so a
// wildcard fault cycles over all matching traffic.
type LinkFault struct {
	From, To string
	// DropEvery drops every k-th matching message; under the reliable
	// transport a drop surfaces as Retransmits extra physical transmissions
	// (default 1). 0 disables dropping.
	DropEvery   int
	Retransmits int
	// DelayEvery holds every k-th matching message for Delay delivery
	// rounds at the receiver (per-link FIFO preserved). 0 disables.
	DelayEvery int
	Delay      int
}

func (f *LinkFault) matches(from, to string) bool {
	return (f.From == "" || f.From == from) && (f.To == "" || f.To == to)
}

// Plan is a composed, deterministic fault schedule.
type Plan struct {
	// Seed identifies the plan; generated plans derive everything from it.
	Seed int64
	// Events are the scheduled crashes and recoveries, sorted by At.
	Events []Event
	// Links are the periodic per-link drop/delay faults.
	Links []LinkFault
	// StepFailRate is the probability that a workload step suffers an
	// injected transient failure on its first execution attempt (applied by
	// WrapFlaky; retries succeed, so instances still terminate).
	StepFailRate float64
}

// Normalize sorts the events by trigger point (stable for equal At).
func (p *Plan) Normalize() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
}

// String renders the canonical plan description. Because a generated plan is
// a pure function of its seed, this string doubles as the fault-schedule
// digest for determinism checks.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, e := range p.Events {
		fmt.Fprintf(&b, ";%s %s@%d", e.Action, e.Node, e.At)
	}
	for _, l := range p.Links {
		from, to := l.From, l.To
		if from == "" {
			from = "*"
		}
		if to == "" {
			to = "*"
		}
		fmt.Fprintf(&b, ";link %s->%s drop/%d x%d delay/%d +%d",
			from, to, l.DropEvery, l.Retransmits, l.DelayEvery, l.Delay)
	}
	if p.StepFailRate > 0 {
		fmt.Fprintf(&b, ";sfr=%g", p.StepFailRate)
	}
	return b.String()
}

// Validate rejects plans that cannot be applied sensibly.
func (p Plan) Validate() error {
	down := make(map[string]bool)
	var last int64
	for i, e := range p.Events {
		if e.Node == "" {
			return fmt.Errorf("faults: event %d has no node", i)
		}
		if e.At < last {
			return fmt.Errorf("faults: events not sorted by At (index %d); call Normalize", i)
		}
		last = e.At
		switch e.Action {
		case Crash:
			if down[e.Node] {
				return fmt.Errorf("faults: node %q crashed at %d while already down", e.Node, e.At)
			}
			down[e.Node] = true
		case Recover:
			if !down[e.Node] {
				return fmt.Errorf("faults: node %q recovers at %d without a prior crash", e.Node, e.At)
			}
			delete(down, e.Node)
		default:
			return fmt.Errorf("faults: event %d has unknown action %d", i, int(e.Action))
		}
	}
	for node := range down {
		return fmt.Errorf("faults: node %q is crashed but never recovers", node)
	}
	for i, l := range p.Links {
		if l.DropEvery < 0 || l.DelayEvery < 0 || l.Delay < 0 || l.Retransmits < 0 {
			return fmt.Errorf("faults: link fault %d has negative parameters", i)
		}
	}
	if p.StepFailRate < 0 || p.StepFailRate > 1 {
		return fmt.Errorf("faults: step failure rate %g outside [0,1]", p.StepFailRate)
	}
	return nil
}

// hash64 derives a deterministic 64-bit value from a seed and string parts
// (FNV-1a with a final avalanche), matching the workload generator's style of
// seeded decisions.
func hash64(seed int64, parts ...string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(seed)
	for i := 0; i < 8; i++ {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	x := h.Sum64()
	// Murmur3 finalizer for avalanche.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hash01 maps a seeded decision to [0,1).
func hash01(seed int64, parts ...string) float64 {
	return float64(hash64(seed, parts...)>>11) / float64(1<<53)
}

// ChaosPlan generates a deterministic crash/recover schedule: `crashes`
// crash events spread over [firstAt, firstAt+crashes*spacing) of the
// network's logical clock, each targeting a seed-chosen node from targets
// and recovering `downtime` ticks later. Downtime is clamped below spacing
// so a node is never re-crashed while still down.
func ChaosPlan(seed int64, targets []string, crashes int, firstAt, spacing, downtime int64) Plan {
	p := Plan{Seed: seed}
	if len(targets) == 0 || crashes <= 0 {
		return p
	}
	if spacing < 2 {
		spacing = 2
	}
	if downtime < 1 {
		downtime = 1
	}
	if downtime >= spacing {
		downtime = spacing - 1
	}
	for i := 0; i < crashes; i++ {
		node := targets[hash64(seed, "crash", fmt.Sprint(i))%uint64(len(targets))]
		at := firstAt + int64(i)*spacing
		p.Events = append(p.Events,
			Event{Action: Crash, Node: node, At: at},
			Event{Action: Recover, Node: node, At: at + downtime},
		)
	}
	p.Normalize()
	return p
}
