package rules

import (
	"fmt"
	"testing"

	"crew/internal/event"
)

// BenchmarkRuleFiring measures one event delivery against a large rule set
// with sparse event traffic — the workload shape of a busy engine hosting
// many instances: hundreds of registered rules, of which a single posted
// event satisfies exactly one. The indexed path touches only the subscribed
// rule; the scan path re-checks every rule on every delivery.
func BenchmarkRuleFiring(b *testing.B) {
	const nRules = 512
	names := make([]string, nRules)
	for i := range names {
		names[i] = fmt.Sprintf("s%d.done", i)
	}
	build := func() *Engine {
		e := NewEngine()
		for i := 0; i < nRules; i++ {
			e.AddRule(execRule(fmt.Sprintf("r%d", i), names[i]))
		}
		return e
	}

	b.Run("indexed", func(b *testing.B) {
		e := build()
		tab := event.NewTable()
		e.Bind(tab)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fired, err := e.FireOn(names[i%nRules], nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(fired) != 1 {
				b.Fatalf("fired %d rules, want 1", len(fired))
			}
		}
	})

	b.Run("scan", func(b *testing.B) {
		e := build()
		tab := event.NewTable() // unbound: Evaluate falls back to the scan path
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tab.Post(names[i%nRules])
			fired, err := e.Evaluate(tab, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(fired) != 1 {
				b.Fatalf("fired %d rules, want 1", len(fired))
			}
		}
	})
}
