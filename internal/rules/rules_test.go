package rules

import (
	"testing"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
)

func execRule(id string, events ...string) *Rule {
	return &Rule{ID: id, Events: events, Action: Action{Kind: ActExecute, Step: model.StepID(id)}}
}

func fire(t *testing.T, e *Engine, tab *event.Table, env expr.Env) []string {
	t.Helper()
	fired, err := e.Evaluate(tab, env)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	ids := make([]string, len(fired))
	for i, r := range fired {
		ids[i] = r.ID
	}
	return ids
}

func TestActionKindString(t *testing.T) {
	for k, want := range map[ActionKind]string{
		ActExecute: "execute", ActCompensate: "compensate",
		ActAbort: "abort", ActNotify: "notify", ActionKind(9): "ActionKind(9)",
	} {
		if k.String() != want {
			t.Errorf("ActionKind(%d) = %q, want %q", int(k), k, want)
		}
	}
}

func TestBasicFiring(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("r1", "a.done"))
	tab := event.NewTable()

	if ids := fire(t, e, tab, nil); len(ids) != 0 {
		t.Errorf("fired without events: %v", ids)
	}
	tab.Post("a.done")
	if ids := fire(t, e, tab, nil); len(ids) != 1 || ids[0] != "r1" {
		t.Errorf("fired = %v, want [r1]", ids)
	}
	// Same satisfaction epoch: no refire.
	if ids := fire(t, e, tab, nil); len(ids) != 0 {
		t.Errorf("refired in same epoch: %v", ids)
	}
	if !e.Rule("r1").FiredOnce() {
		t.Error("FiredOnce = false")
	}
}

func TestConjunctiveEvents(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("join", "a.done", "b.done"))
	tab := event.NewTable()
	tab.Post("a.done")
	if ids := fire(t, e, tab, nil); len(ids) != 0 {
		t.Errorf("fired with partial events: %v", ids)
	}
	tab.Post("b.done")
	if ids := fire(t, e, tab, nil); len(ids) != 1 {
		t.Errorf("join did not fire: %v", ids)
	}
}

func TestPreconditionGating(t *testing.T) {
	e := NewEngine()
	r := execRule("cond", "a.done")
	r.Precond = expr.MustCompile("X > 5")
	e.AddRule(r)
	tab := event.NewTable()
	tab.Post("a.done")
	env := expr.MapEnv{"X": expr.Num(3)}
	if ids := fire(t, e, tab, env); len(ids) != 0 {
		t.Errorf("fired with false precondition: %v", ids)
	}
	// Condition later becomes true (data changed): rule is still eligible.
	env["X"] = expr.Num(7)
	if ids := fire(t, e, tab, env); len(ids) != 1 {
		t.Errorf("did not fire once precondition true: %v", ids)
	}
}

func TestPreconditionErrorDoesNotWedge(t *testing.T) {
	e := NewEngine()
	bad := execRule("bad", "a.done")
	bad.Precond = expr.MustCompile(`"s" < 1`)
	good := execRule("good", "a.done")
	e.AddRule(bad)
	e.AddRule(good)
	tab := event.NewTable()
	tab.Post("a.done")
	fired, err := e.Evaluate(tab, nil)
	if err == nil {
		t.Error("expected precondition error")
	}
	if len(fired) != 1 || fired[0].ID != "good" {
		t.Errorf("good rule should fire despite bad one: %v", fired)
	}
}

func TestInvalidationAndRefire(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("r", "a.done"))
	tab := event.NewTable()
	tab.Post("a.done")
	fire(t, e, tab, nil)

	// Rollback invalidates the event; rule must not fire.
	tab.Invalidate("a.done")
	if ids := fire(t, e, tab, nil); len(ids) != 0 {
		t.Errorf("fired on invalidated event: %v", ids)
	}
	// Re-execution re-posts; count changed, so the rule fires again.
	tab.Post("a.done")
	if ids := fire(t, e, tab, nil); len(ids) != 1 {
		t.Errorf("did not refire after re-post: %v", ids)
	}
}

func TestRearm(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("r", "a.done"))
	tab := event.NewTable()
	tab.Post("a.done")
	fire(t, e, tab, nil)
	e.Rearm("r")
	if ids := fire(t, e, tab, nil); len(ids) != 1 {
		t.Errorf("Rearm did not allow refire: %v", ids)
	}
	e.Rearm("missing") // no-op
	n := e.RearmWhere(func(id string) bool { return id == "r" })
	if n != 1 {
		t.Errorf("RearmWhere = %d", n)
	}
	if ids := fire(t, e, tab, nil); len(ids) != 1 {
		t.Errorf("RearmWhere did not allow refire: %v", ids)
	}
}

func TestEventlessRuleFiresOnce(t *testing.T) {
	e := NewEngine()
	e.AddRule(&Rule{ID: "now", Action: Action{Kind: ActNotify}})
	tab := event.NewTable()
	if ids := fire(t, e, tab, nil); len(ids) != 1 {
		t.Errorf("eventless rule did not fire: %v", ids)
	}
	if ids := fire(t, e, tab, nil); len(ids) != 0 {
		t.Errorf("eventless rule refired: %v", ids)
	}
}

func TestAddRuleReplaceAndRemove(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("r", "a.done"))
	e.AddRule(execRule("r", "b.done")) // replace
	if len(e.Rules()) != 1 {
		t.Fatalf("replace duplicated rule: %d", len(e.Rules()))
	}
	tab := event.NewTable()
	tab.Post("a.done")
	if ids := fire(t, e, tab, nil); len(ids) != 0 {
		t.Error("old rule fired after replacement")
	}
	tab.Post("b.done")
	if ids := fire(t, e, tab, nil); len(ids) != 1 {
		t.Error("replacement rule did not fire")
	}
	if !e.RemoveRule("r") || e.RemoveRule("r") {
		t.Error("RemoveRule semantics wrong")
	}
	if e.Rule("r") != nil || len(e.Rules()) != 0 {
		t.Error("rule not removed")
	}
}

func TestAddRuleDoesNotAliasCaller(t *testing.T) {
	e := NewEngine()
	src := execRule("r", "a.done")
	e.AddRule(src)
	src.Events[0] = "mutated"
	tab := event.NewTable()
	tab.Post("a.done")
	if ids := fire(t, e, tab, nil); len(ids) != 1 {
		t.Error("engine rule affected by caller mutation")
	}
}

func TestAddPrecondition(t *testing.T) {
	e := NewEngine()
	r := execRule("r", "a.done")
	r.Precond = expr.MustCompile("X > 0")
	e.AddRule(r)

	if err := e.AddPrecondition("r", []string{"ext:WF2.1:S3.done"}, expr.MustCompile("Y > 0")); err != nil {
		t.Fatal(err)
	}
	tab := event.NewTable()
	tab.Post("a.done")
	env := expr.MapEnv{"X": expr.Num(1), "Y": expr.Num(1)}
	if ids := fire(t, e, tab, env); len(ids) != 0 {
		t.Error("fired without added event requirement")
	}
	tab.Post("ext:WF2.1:S3.done")
	env["Y"] = expr.Num(0)
	if ids := fire(t, e, tab, env); len(ids) != 0 {
		t.Error("fired with false added conjunct")
	}
	env["Y"] = expr.Num(2)
	if ids := fire(t, e, tab, env); len(ids) != 1 {
		t.Error("did not fire once strengthened rule satisfied")
	}

	// Duplicate event names are not added twice.
	if err := e.AddPrecondition("r", []string{"a.done"}, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Rule("r").Events); got != 2 {
		t.Errorf("duplicate event appended: %d events", got)
	}
	if err := e.AddPrecondition("missing", nil, nil); err == nil {
		t.Error("AddPrecondition on missing rule should error")
	}
}

func TestAddPreconditionOnUnconditionedRule(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("r", "a.done"))
	if err := e.AddPrecondition("r", nil, expr.MustCompile("Z == 1")); err != nil {
		t.Fatal(err)
	}
	tab := event.NewTable()
	tab.Post("a.done")
	if ids := fire(t, e, tab, expr.MapEnv{"Z": expr.Num(0)}); len(ids) != 0 {
		t.Error("fired with false precondition")
	}
	if ids := fire(t, e, tab, expr.MapEnv{"Z": expr.Num(1)}); len(ids) != 1 {
		t.Error("did not fire with true precondition")
	}
}

func TestAddEventPrimitive(t *testing.T) {
	e := NewEngine()
	tab := event.NewTable()
	if !e.AddEvent(tab, "ext:WF1.1:S2.done") {
		t.Error("AddEvent should report change")
	}
	if e.AddEvent(tab, "ext:WF1.1:S2.done") {
		t.Error("duplicate AddEvent should not report change")
	}
	if !tab.Has("ext:WF1.1:S2.done") {
		t.Error("event not posted")
	}
}

func TestWaitingRules(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("one", "a.done", "b.done"))
	e.AddRule(execRule("two", "c.done"))
	tab := event.NewTable()
	tab.Post("a.done")
	w := e.WaitingRules(tab)
	if len(w) != 2 {
		t.Fatalf("WaitingRules = %d entries", len(w))
	}
	if w[0].Rule.ID != "one" || len(w[0].Missing) != 1 || w[0].Missing[0] != "b.done" {
		t.Errorf("Waiting[0] = %+v", w[0])
	}
	if w[1].Rule.ID != "two" || w[1].Missing[0] != "c.done" {
		t.Errorf("Waiting[1] = %+v", w[1])
	}
	tab.Post("b.done")
	tab.Post("c.done")
	if w := e.WaitingRules(tab); len(w) != 0 {
		t.Errorf("no rules should wait: %+v", w)
	}
}

func TestFiringOrderIsInsertionOrder(t *testing.T) {
	e := NewEngine()
	e.AddRule(execRule("z", "a.done"))
	e.AddRule(execRule("a", "a.done"))
	tab := event.NewTable()
	tab.Post("a.done")
	ids := fire(t, e, tab, nil)
	if len(ids) != 2 || ids[0] != "z" || ids[1] != "a" {
		t.Errorf("fired order = %v, want [z a]", ids)
	}
}
