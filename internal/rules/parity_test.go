package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"crew/internal/event"
	"crew/internal/expr"
)

// twin drives an indexed engine (bound to its table) and a scan engine (the
// unbound reference) through identical mutations and fails the test the first
// time their fired-rule sequences diverge.
type twin struct {
	t        *testing.T
	idx, ref *Engine
	itab     *event.Table
	rtab     *event.Table
	env      expr.MapEnv
}

func newTwin(t *testing.T) *twin {
	tw := &twin{
		t: t, idx: NewEngine(), ref: NewEngine(),
		itab: event.NewTable(), rtab: event.NewTable(),
		env: expr.MapEnv{},
	}
	tw.idx.Bind(tw.itab)
	return tw
}

func (tw *twin) add(r *Rule) {
	tw.idx.AddRule(r)
	tw.ref.AddRule(r)
}

func (tw *twin) post(name string) {
	tw.itab.Post(name)
	tw.rtab.Post(name)
}

func (tw *twin) invalidate(name string) {
	tw.itab.Invalidate(name)
	tw.rtab.Invalidate(name)
}

// eval evaluates both engines and asserts identical firing order.
func (tw *twin) eval(when string) []string {
	tw.t.Helper()
	got, gerr := tw.idx.Evaluate(tw.itab, tw.env)
	want, werr := tw.ref.EvaluateScan(tw.rtab, tw.env)
	if (gerr == nil) != (werr == nil) {
		tw.t.Fatalf("%s: indexed err=%v, scan err=%v", when, gerr, werr)
	}
	ids := func(rs []*Rule) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = r.ID
		}
		return out
	}
	g, w := ids(got), ids(want)
	if len(g) != len(w) {
		tw.t.Fatalf("%s: indexed fired %v, scan fired %v", when, g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			tw.t.Fatalf("%s: indexed fired %v, scan fired %v", when, g, w)
		}
	}
	return g
}

func TestIndexedMatchesScanBasics(t *testing.T) {
	tw := newTwin(t)
	cond := expr.MustCompile(`WF.x > 3`)
	tw.add(execRule("r1", "a.done"))
	tw.add(&Rule{ID: "r2", Events: []string{"a.done", "b.done"}, Action: Action{Kind: ActExecute, Step: "S2"}})
	tw.add(&Rule{ID: "r3", Events: []string{"b.done"}, Precond: cond, Action: Action{Kind: ActExecute, Step: "S3"}})

	tw.eval("empty table")
	tw.post("a.done")
	if got := tw.eval("a.done"); len(got) != 1 || got[0] != "r1" {
		t.Fatalf("fired %v, want [r1]", got)
	}
	tw.post("b.done")
	// r2 becomes satisfied; r3's precondition is still false (x unset).
	if got := tw.eval("b.done"); len(got) != 1 || got[0] != "r2" {
		t.Fatalf("fired %v, want [r2]", got)
	}
	// Data-only change: no event traffic, but r3's precondition turns true.
	tw.env["WF.x"] = expr.Num(5)
	if got := tw.eval("data change"); len(got) != 1 || got[0] != "r3" {
		t.Fatalf("fired %v, want [r3]", got)
	}
	tw.eval("steady state")

	// Rollback shape: invalidate and re-post re-fires in insertion order.
	tw.invalidate("a.done")
	tw.invalidate("b.done")
	tw.eval("after invalidation")
	tw.post("a.done")
	tw.post("b.done")
	if got := tw.eval("refire"); len(got) != 3 {
		t.Fatalf("refire fired %v, want all three", got)
	}
}

func TestIndexedMatchesScanDynamicRuleSet(t *testing.T) {
	tw := newTwin(t)
	tw.add(execRule("r1", "a.done"))
	tw.post("a.done")
	tw.eval("r1 fires")

	// Replacement keeps the firing position; the strengthened form re-arms.
	tw.add(&Rule{ID: "r1", Events: []string{"a.done", "c.done"}, Action: Action{Kind: ActExecute, Step: "S1"}})
	tw.add(execRule("r0", "c.done"))
	tw.eval("after replace")
	tw.post("c.done")
	if got := tw.eval("c.done"); len(got) != 2 || got[0] != "r1" || got[1] != "r0" {
		t.Fatalf("fired %v, want [r1 r0] (replacement keeps insertion position)", got)
	}

	// AddPrecondition on both engines, then satisfy it.
	if err := tw.idx.AddPrecondition("r0", []string{"d.done"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := tw.ref.AddPrecondition("r0", []string{"d.done"}, nil); err != nil {
		t.Fatal(err)
	}
	tw.eval("strengthened")
	tw.post("d.done")
	if got := tw.eval("d.done"); len(got) != 1 || got[0] != "r0" {
		t.Fatalf("fired %v, want [r0]", got)
	}

	// Removal drops any armed entry.
	tw.idx.RemoveRule("r1")
	tw.ref.RemoveRule("r1")
	tw.invalidate("a.done")
	tw.post("a.done")
	tw.eval("after removal")

	// Rearm re-fires on the current table state.
	tw.idx.Rearm("r0")
	tw.ref.Rearm("r0")
	if got := tw.eval("rearm"); len(got) != 1 || got[0] != "r0" {
		t.Fatalf("fired %v, want [r0]", got)
	}
}

// TestIndexedMatchesScanRandomized drives both paths through a seeded random
// mutation script — posts, invalidations, data flips, rearms — over a rule
// set with overlapping event subscriptions and preconditions.
func TestIndexedMatchesScanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tw := newTwin(t)
	events := []string{"a.done", "b.done", "c.done", "d.done", "e.done"}
	cond := expr.MustCompile(`WF.flag == 1`)
	for i := 0; i < 24; i++ {
		evs := []string{events[i%len(events)]}
		if i%3 == 0 {
			evs = append(evs, events[(i+2)%len(events)])
		}
		r := &Rule{ID: fmt.Sprintf("r%02d", i), Events: evs, Action: Action{Kind: ActExecute, Step: "S"}}
		if i%4 == 0 {
			r.Precond = cond
		}
		tw.add(r)
	}
	tw.env["WF.flag"] = expr.Num(0)
	for step := 0; step < 400; step++ {
		ev := events[rng.Intn(len(events))]
		switch rng.Intn(6) {
		case 0, 1, 2:
			tw.post(ev)
		case 3:
			tw.invalidate(ev)
		case 4:
			tw.env["WF.flag"] = expr.Num(float64(rng.Intn(2)))
		case 5:
			id := fmt.Sprintf("r%02d", rng.Intn(24))
			tw.idx.Rearm(id)
			tw.ref.Rearm(id)
		}
		tw.eval(fmt.Sprintf("step %d", step))
	}
}
