package rules

import (
	"testing"

	"crew/internal/event"
)

// TestFireOnAllocBudget guards the reactive dispatch hot path the hotalloc
// analyzer gates (//crew:hotpath on FireOn/fireArmed): a steady-state FireOn
// that completes no rule — the overwhelmingly common case on a busy agent —
// must not allocate. Rules waiting on other events stay untouched, and the
// armed agenda drains without building anything.
func TestFireOnAllocBudget(t *testing.T) {
	e := NewEngine()
	tab := event.NewTable()
	e.Bind(tab)
	// A realistic standing rule set: conjunctive rules none of which the
	// posted event completes.
	for _, id := range []string{"r1", "r2", "r3"} {
		e.InstallRule(execRule(id, id+".a", id+".b"))
	}
	// Warm up: the first Post inserts the event's table entry.
	if _, err := e.FireOn("tick", nil); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := e.FireOn("tick", nil); err != nil {
			t.Error(err)
		}
	})
	if avg > 0 {
		t.Errorf("FireOn allocates %.2f/op on the no-fire path, budget 0", avg)
	}
}
