package rules

import (
	"testing"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
)

// fig3Schema reproduces the paper's Figure 3 workflow:
// S1 -> S2 -> (S3 -> S4 | S6) -> S5 with an XOR-join at S5.
func fig3Schema(t *testing.T) *model.Schema {
	t.Helper()
	return model.NewSchema("Fig3", "I1").
		Step("S1", "p1").
		Step("S2", "p2", model.WithOutputs("O1")).
		Step("S3", "p3").
		Step("S4", "p4").
		Step("S6", "p6").
		Step("S5", "p5", model.WithJoin(model.JoinAny)).
		Seq("S1", "S2").
		CondArc("S2", "S3", "S2.O1 > 0").
		CondArc("S2", "S6", "S2.O1 <= 0").
		Arc("S3", "S4").
		Arc("S4", "S5").
		Arc("S6", "S5").
		MustBuild()
}

func TestExecRuleID(t *testing.T) {
	if ExecRuleID("S1", 0) != "exec:S1" {
		t.Error("base rule ID wrong")
	}
	if ExecRuleID("S1", 2) != "exec:S1#2" {
		t.Error("indexed rule ID wrong")
	}
	if !IsExecRuleFor("exec:S1", "S1") || !IsExecRuleFor("exec:S1#2", "S1") {
		t.Error("IsExecRuleFor false negatives")
	}
	if IsExecRuleFor("exec:S12", "S1") || IsExecRuleFor("exec:S1", "S12") || IsExecRuleFor("other", "S1") {
		t.Error("IsExecRuleFor false positives")
	}
}

func TestStartStepRule(t *testing.T) {
	s := fig3Schema(t)
	rs := StepRules(s, "S1")
	if len(rs) != 1 {
		t.Fatalf("rules = %d", len(rs))
	}
	if len(rs[0].Events) != 1 || rs[0].Events[0] != event.WorkflowStartName {
		t.Errorf("start rule events = %v", rs[0].Events)
	}
	if rs[0].Action.Kind != ActExecute || rs[0].Action.Step != "S1" {
		t.Errorf("start rule action = %+v", rs[0].Action)
	}
}

func TestSequentialStepRule(t *testing.T) {
	s := fig3Schema(t)
	rs := StepRules(s, "S2")
	if len(rs) != 1 || len(rs[0].Events) != 1 || rs[0].Events[0] != "S1.done" {
		t.Errorf("sequential rule = %+v", rs[0])
	}
	if rs[0].Precond != nil {
		t.Error("unconditional arc should not add precondition")
	}
}

func TestBranchRulesCarryConditions(t *testing.T) {
	s := fig3Schema(t)
	r3 := StepRules(s, "S3")
	if len(r3) != 1 || r3[0].Precond == nil || r3[0].Precond.Source() != "S2.O1 > 0" {
		t.Errorf("branch rule for S3 = %+v", r3[0])
	}
	r6 := StepRules(s, "S6")
	if len(r6) != 1 || r6[0].Precond == nil || r6[0].Precond.Source() != "S2.O1 <= 0" {
		t.Errorf("branch rule for S6 = %+v", r6[0])
	}
}

func TestJoinAnyGeneratesRulePerBranch(t *testing.T) {
	s := fig3Schema(t)
	rs := StepRules(s, "S5")
	if len(rs) != 2 {
		t.Fatalf("JoinAny rules = %d, want 2", len(rs))
	}
	if rs[0].ID != "exec:S5" || rs[1].ID != "exec:S5#1" {
		t.Errorf("rule IDs = %s, %s", rs[0].ID, rs[1].ID)
	}
	evs := map[string]bool{rs[0].Events[0]: true, rs[1].Events[0]: true}
	if !evs["S4.done"] || !evs["S6.done"] {
		t.Errorf("JoinAny events = %v", evs)
	}
}

func TestJoinAllSingleConjunctiveRule(t *testing.T) {
	s := model.NewSchema("Dia").
		Step("S1", "p").
		Step("S2", "p").
		Step("S3", "p").
		Step("S4", "p", model.WithJoin(model.JoinAll)).
		Arc("S1", "S2").
		Arc("S1", "S3").
		Arc("S2", "S4").
		Arc("S3", "S4").
		MustBuild()
	rs := StepRules(s, "S4")
	if len(rs) != 1 {
		t.Fatalf("JoinAll rules = %d, want 1", len(rs))
	}
	if len(rs[0].Events) != 2 {
		t.Errorf("JoinAll events = %v", rs[0].Events)
	}
}

func TestJoinAllCombinesArcConditions(t *testing.T) {
	s := model.NewSchema("CondJoin").
		Step("A", "p", model.WithOutputs("O1")).
		Step("B", "p", model.WithOutputs("O1")).
		Step("C", "p", model.WithJoin(model.JoinAll)).
		CondArc("A", "C", "A.O1 > 0").
		CondArc("B", "C", "B.O1 > 0").
		MustBuild()
	rs := StepRules(s, "C")
	if len(rs) != 1 || rs[0].Precond == nil {
		t.Fatalf("rules = %+v", rs)
	}
	env := expr.MapEnv{"A.O1": expr.Num(1), "B.O1": expr.Num(0)}
	ok, err := rs[0].Precond.EvalBool(env)
	if err != nil || ok {
		t.Errorf("combined condition = (%v, %v), want false", ok, err)
	}
	env["B.O1"] = expr.Num(2)
	ok, _ = rs[0].Precond.EvalBool(env)
	if !ok {
		t.Error("combined condition should be true when both hold")
	}
}

func TestDataDependencyAddsEvents(t *testing.T) {
	// S3 takes data from S1 (not its control predecessor S2).
	s := model.NewSchema("DataDep").
		Step("S1", "p", model.WithOutputs("O1")).
		Step("S2", "p").
		Step("S3", "p", model.WithInputs("S1.O1")).
		Arc("S1", "S2").
		Arc("S2", "S3").
		MustBuild()
	rs := StepRules(s, "S3")
	if len(rs) != 1 {
		t.Fatalf("rules = %d", len(rs))
	}
	has := map[string]bool{}
	for _, ev := range rs[0].Events {
		has[ev] = true
	}
	if !has["S2.done"] || !has["S1.done"] {
		t.Errorf("events = %v, want control + data deps", rs[0].Events)
	}
}

func TestDataDependencyNotDuplicatedForControlPred(t *testing.T) {
	s := model.NewSchema("NoDup").
		Step("S1", "p", model.WithOutputs("O1")).
		Step("S2", "p", model.WithInputs("S1.O1")).
		Arc("S1", "S2").
		MustBuild()
	rs := StepRules(s, "S2")
	if len(rs[0].Events) != 1 {
		t.Errorf("events = %v, want exactly [S1.done]", rs[0].Events)
	}
}

func TestLoopArcGeneratesNoRule(t *testing.T) {
	s := model.NewSchema("Loop").
		Step("A", "p", model.WithOutputs("O1")).
		Step("B", "p").
		Arc("A", "B").
		LoopArc("B", "A", "A.O1 < 3").
		MustBuild()
	rs := StepRules(s, "A")
	if len(rs) != 1 || rs[0].Events[0] != event.WorkflowStartName {
		t.Errorf("loop head rules = %+v", rs)
	}
}

func TestStepRulesUnknownStep(t *testing.T) {
	s := fig3Schema(t)
	if rs := StepRules(s, "missing"); rs != nil {
		t.Errorf("rules for unknown step = %v", rs)
	}
}

func TestSchemaRulesAndInstall(t *testing.T) {
	s := fig3Schema(t)
	rs := SchemaRules(s)
	// S1..S4, S6: one rule each; S5: two rules.
	if len(rs) != 7 {
		t.Fatalf("SchemaRules = %d rules, want 7", len(rs))
	}
	e := NewEngine()
	InstallSchemaRules(e, s)
	if len(e.Rules()) != 7 {
		t.Errorf("installed %d rules", len(e.Rules()))
	}
}

// TestEndToEndNavigationThroughRules drives the Figure 3 schema through the
// rule engine only, playing the role of the navigation layer, and checks the
// executed path for the "top branch" data.
func TestEndToEndNavigationThroughRules(t *testing.T) {
	s := fig3Schema(t)
	e := NewEngine()
	InstallSchemaRules(e, s)
	tab := event.NewTable()
	data := expr.MapEnv{}

	var executed []model.StepID
	run := func() {
		for {
			fired, err := e.Evaluate(tab, data)
			if err != nil {
				t.Fatal(err)
			}
			if len(fired) == 0 {
				return
			}
			for _, r := range fired {
				executed = append(executed, r.Action.Step)
				// Simulate step completion.
				if r.Action.Step == "S2" {
					data["S2.O1"] = expr.Num(5) // top branch
				}
				tab.Post(event.DoneName(string(r.Action.Step)))
			}
		}
	}
	tab.Post(event.WorkflowStartName)
	run()

	want := []model.StepID{"S1", "S2", "S3", "S4", "S5"}
	if len(executed) != len(want) {
		t.Fatalf("executed = %v, want %v", executed, want)
	}
	for i := range want {
		if executed[i] != want[i] {
			t.Fatalf("executed = %v, want %v", executed, want)
		}
	}
}
