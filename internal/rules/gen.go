package rules

import (
	"fmt"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
)

// ExecRuleID names the i-th execution rule of a step. Steps with JoinAll
// semantics have a single rule (i=0); JoinAny confluence steps have one rule
// per incoming branch.
func ExecRuleID(step model.StepID, i int) string {
	if i == 0 {
		return "exec:" + string(step)
	}
	return fmt.Sprintf("exec:%s#%d", step, i)
}

// IsExecRuleFor reports whether a rule ID is an execution rule of the step.
func IsExecRuleFor(id string, step model.StepID) bool {
	prefix := "exec:" + string(step)
	if id == prefix {
		return true
	}
	return len(id) > len(prefix) && id[:len(prefix)] == prefix && id[len(prefix)] == '#'
}

// templates is the per-schema cache of generated rules, stored in the
// schema's TemplateCache slot. Templates are immutable: engines clone on
// AddRule, and clones copy-on-write their Events before extending them.
type templates struct {
	all    []*Rule
	byStep map[model.StepID][]*Rule
}

// templatesOf returns the schema's (possibly cached) generated rule set.
// Frozen schemas memoize; mutated/unvalidated schemas regenerate per call.
func templatesOf(s *model.Schema) *templates {
	slot := s.TemplateCache()
	if slot != nil {
		if v := slot.Load(); v != nil {
			return v.(*templates)
		}
	}
	t := &templates{byStep: make(map[model.StepID][]*Rule, len(s.Order))}
	for _, id := range s.Order {
		rs := generateStepRules(s, id)
		t.byStep[id] = rs
		t.all = append(t.all, rs...)
	}
	if slot != nil {
		slot.Store(t)
	}
	return t
}

// StepRules returns the execution rules for one step of a schema, per the
// paper's navigation semantics (see generateStepRules). The returned rules
// are shared templates: install them with Engine.AddRule (which clones) and
// do not mutate them.
func StepRules(s *model.Schema, id model.StepID) []*Rule {
	if s.Steps[id] == nil {
		return nil
	}
	return templatesOf(s).byStep[id]
}

// generateStepRules generates the execution rules for one step of a schema,
// per the paper's navigation semantics:
//
//   - start steps (no incoming control arc) are triggered by workflow.start;
//   - a step on a sequential path requires the step.done event of its
//     predecessor, plus step.done of any step it takes input data from;
//   - an if-then-else successor additionally requires the branch condition
//     (the arc condition becomes the rule's precondition);
//   - a JoinAll confluence step requires step.done of the last step of every
//     incoming branch (one conjunctive rule);
//   - a JoinAny confluence step fires when any one incoming branch completes
//     (one rule per branch).
//
// Loop back-arcs generate no rules: loop re-entry is driven by the
// navigation layer, which invalidates body events and re-dispatches the head.
func generateStepRules(s *model.Schema, id model.StepID) []*Rule {
	st := s.Steps[id]
	if st == nil {
		return nil
	}
	preds := s.ControlPredecessors(id)

	// Data-dependency events: done events of producer steps that are not
	// already control predecessors covered below.
	dataEvents := func(exclude map[model.StepID]bool) []string {
		var out []string
		for _, src := range s.DataSourceSteps(id) {
			if !exclude[src] {
				out = append(out, event.DoneName(string(src)))
			}
		}
		return out
	}

	if len(preds) == 0 {
		excl := map[model.StepID]bool{}
		events := append([]string{event.WorkflowStartName}, dataEvents(excl)...)
		return []*Rule{{
			ID:     ExecRuleID(id, 0),
			Events: events,
			Action: Action{Kind: ActExecute, Step: id},
		}}
	}

	// Collect incoming arcs with their conditions.
	type incoming struct {
		from model.StepID
		cond string
	}
	var ins []incoming
	for _, a := range s.Arcs {
		if a.Kind == model.Control && !a.Loop && a.To == id {
			ins = append(ins, incoming{from: a.From, cond: a.Cond})
		}
	}

	if len(ins) == 1 || st.Join == model.JoinAll {
		// Single conjunctive rule.
		excl := make(map[model.StepID]bool, len(ins))
		var events []string
		var conds []string
		for _, in := range ins {
			excl[in.from] = true
			events = append(events, event.DoneName(string(in.from)))
			if in.cond != "" {
				conds = append(conds, in.cond)
			}
		}
		condSrc := ""
		switch len(conds) {
		case 0:
		case 1:
			condSrc = conds[0]
		default:
			for i, c := range conds {
				if i > 0 {
					condSrc += " && "
				}
				condSrc += "(" + c + ")"
			}
		}
		events = append(events, dataEvents(excl)...)
		r := &Rule{
			ID:     ExecRuleID(id, 0),
			Events: events,
			Action: Action{Kind: ActExecute, Step: id},
		}
		if condSrc != "" {
			r.Precond = expr.MustCompile(condSrc)
		}
		return []*Rule{r}
	}

	// JoinAny: one rule per incoming branch.
	var out []*Rule
	for i, in := range ins {
		excl := map[model.StepID]bool{in.from: true}
		events := append([]string{event.DoneName(string(in.from))}, dataEvents(excl)...)
		r := &Rule{
			ID:     ExecRuleID(id, i),
			Events: events,
			Action: Action{Kind: ActExecute, Step: id},
		}
		if in.cond != "" {
			r.Precond = expr.MustCompile(in.cond)
		}
		out = append(out, r)
	}
	return out
}

// SchemaRules returns the execution rules for every step of the schema, in
// definition order. This is the compiled general-rule table instantiated for
// each new workflow instance; for frozen schemas it is generated once and
// shared (engines clone on install).
func SchemaRules(s *model.Schema) []*Rule {
	return templatesOf(s).all
}

// InstallSchemaRules adds all schema rules to an engine. The shared
// templates are installed without copying (see Engine.InstallRule).
func InstallSchemaRules(e *Engine, s *model.Schema) {
	for _, r := range SchemaRules(s) {
		e.InstallRule(r)
	}
}
