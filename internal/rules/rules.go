// Package rules implements the rule-based run-time system that enacts
// workflows: event-condition-action rules, the general-rule and pending-rule
// tables, and the three implementation-level primitives the paper builds all
// coordinated-execution support on — AddRule(), AddEvent() and
// AddPrecondition() — which dynamically modify the rule sets of workflow
// instances.
//
// A rule fires when every event it requires is valid in the instance's event
// table and its precondition evaluates to true against the instance's data
// table. Fired rules are remembered by the multiset of required-event counts
// at fire time, so a rule fires again only after one of its events has been
// re-posted (which is what happens when a rollback invalidates events and
// re-execution posts them anew).
package rules

import (
	"fmt"
	"sort"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
)

// ActionKind classifies what a fired rule triggers.
type ActionKind int

const (
	// ActExecute schedules a step for execution.
	ActExecute ActionKind = iota
	// ActCompensate schedules a step's compensation.
	ActCompensate
	// ActAbort aborts the workflow instance.
	ActAbort
	// ActNotify runs a custom callback; coordination rules injected via
	// AddRule use it to notify agents of other workflow instances.
	ActNotify
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActExecute:
		return "execute"
	case ActCompensate:
		return "compensate"
	case ActAbort:
		return "abort"
	case ActNotify:
		return "notify"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is the A of an ECA rule.
type Action struct {
	Kind ActionKind
	Step model.StepID
	// Fn runs for ActNotify actions. Coordination rules are regenerated on
	// recovery, so holding a closure here is safe.
	Fn func()
}

// Rule is an event-condition-action rule instance.
type Rule struct {
	// ID is unique within one instance's rule set.
	ID string
	// Events lists event names that must all be valid for the rule to fire.
	Events []string
	// Precond must evaluate true (against the data table) for the rule to
	// fire; nil means unconditional.
	Precond *expr.Expr
	// Action is what firing triggers.
	Action Action

	// firedMark is the sum of required-event counts at the last firing;
	// -1 if never fired.
	firedMark int
}

// clone returns a shallow copy with firing state reset.
func (r *Rule) clone() *Rule {
	c := *r
	c.Events = append([]string(nil), r.Events...)
	c.firedMark = -1
	return &c
}

// Engine is the per-instance rule engine holding the general-rule table.
// Rules that have been considered but are not yet satisfiable simply remain
// unfired — the pending-rule table of the paper is the subset of rules with
// missing events, exposed via Waiting.
type Engine struct {
	rules []*Rule
	byID  map[string]*Rule
}

// NewEngine returns an empty rule engine.
func NewEngine() *Engine {
	return &Engine{byID: make(map[string]*Rule)}
}

// AddRule is the AddRule() primitive: it installs a rule into the instance's
// rule set. Adding an ID that already exists replaces the old rule (the rule
// set is "dynamically modified").
func (e *Engine) AddRule(r *Rule) {
	nr := r.clone()
	if old, ok := e.byID[nr.ID]; ok {
		for i, existing := range e.rules {
			if existing == old {
				e.rules[i] = nr
				break
			}
		}
	} else {
		e.rules = append(e.rules, nr)
	}
	e.byID[nr.ID] = nr
}

// RemoveRule discards a rule; it reports whether the rule existed.
func (e *Engine) RemoveRule(id string) bool {
	r, ok := e.byID[id]
	if !ok {
		return false
	}
	delete(e.byID, id)
	for i, existing := range e.rules {
		if existing == r {
			e.rules = append(e.rules[:i], e.rules[i+1:]...)
			break
		}
	}
	return true
}

// Rule returns the rule with the given ID, or nil.
func (e *Engine) Rule(id string) *Rule { return e.byID[id] }

// Rules returns the rule set in insertion order.
func (e *Engine) Rules() []*Rule { return append([]*Rule(nil), e.rules...) }

// AddPrecondition is the AddPrecondition() primitive: it strengthens an
// existing rule with additional required events and/or an additional
// conjunct. The rule re-arms so the strengthened form is evaluated afresh.
func (e *Engine) AddPrecondition(ruleID string, extraEvents []string, extraCond *expr.Expr) error {
	r, ok := e.byID[ruleID]
	if !ok {
		return fmt.Errorf("rules: AddPrecondition: no rule %q", ruleID)
	}
	for _, ev := range extraEvents {
		found := false
		for _, have := range r.Events {
			if have == ev {
				found = true
				break
			}
		}
		if !found {
			r.Events = append(r.Events, ev)
		}
	}
	if extraCond != nil {
		if r.Precond == nil {
			r.Precond = extraCond
		} else {
			combined, err := expr.Compile("(" + r.Precond.Source() + ") && (" + extraCond.Source() + ")")
			if err != nil {
				return fmt.Errorf("rules: AddPrecondition: %w", err)
			}
			r.Precond = combined
		}
	}
	r.firedMark = -1
	return nil
}

// AddEvent is the AddEvent() primitive: it posts an (external) event into the
// instance's event table. It returns whether the table changed. The caller
// follows up with Evaluate to fire newly satisfied rules.
func (e *Engine) AddEvent(tab *event.Table, name string) bool {
	return tab.Post(name)
}

// Rearm clears a rule's firing memory so it may fire again on the current
// event-table state; the navigation layer re-arms rules of steps whose
// events it invalidates (loop bodies, rollback regions).
func (e *Engine) Rearm(id string) {
	if r, ok := e.byID[id]; ok {
		r.firedMark = -1
	}
}

// RearmWhere re-arms every rule whose ID satisfies pred.
func (e *Engine) RearmWhere(pred func(id string) bool) int {
	n := 0
	for _, r := range e.rules {
		if pred(r.ID) {
			r.firedMark = -1
			n++
		}
	}
	return n
}

func mark(tab *event.Table, events []string) int {
	m := 0
	for _, ev := range events {
		m += tab.Count(ev)
	}
	return m
}

// satisfied reports whether all of the rule's events are valid.
func satisfied(tab *event.Table, r *Rule) bool {
	for _, ev := range r.Events {
		if !tab.Has(ev) {
			return false
		}
	}
	return true
}

// Evaluate considers every rule against the event table and data environment
// and returns the rules that fire, in insertion order. Each returned rule's
// action has already been marked fired; ActNotify callbacks are NOT invoked
// here — the caller runs them (so it can count load and messages first).
//
// The returned error carries the first precondition evaluation failure, but
// evaluation continues past failing rules (a bad condition on one rule must
// not wedge the instance).
func (e *Engine) Evaluate(tab *event.Table, env expr.Env) ([]*Rule, error) {
	var fired []*Rule
	var firstErr error
	for _, r := range e.rules {
		if !satisfied(tab, r) {
			continue
		}
		m := mark(tab, r.Events)
		if r.firedMark == m && r.firedMark != -1 {
			continue // already fired for this satisfaction epoch
		}
		if len(r.Events) == 0 && r.firedMark != -1 {
			continue // eventless rules fire at most once
		}
		if r.Precond != nil {
			ok, err := r.Precond.EvalBool(env)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("rules: rule %s precondition: %w", r.ID, err)
				}
				continue
			}
			if !ok {
				continue
			}
		}
		r.firedMark = m
		if len(r.Events) == 0 {
			r.firedMark = 0
		}
		fired = append(fired, r)
	}
	return fired, firstErr
}

// Waiting describes a pending rule: satisfiable in principle but missing
// events. The distributed agent's predecessor-failure detector polls
// StepStatus for rules that wait on exactly one event for too long.
type Waiting struct {
	Rule    *Rule
	Missing []string
}

// WaitingRules returns the rules with at least one missing event, along with
// the missing names (sorted), in insertion order.
func (e *Engine) WaitingRules(tab *event.Table) []Waiting {
	var out []Waiting
	for _, r := range e.rules {
		var missing []string
		for _, ev := range r.Events {
			if !tab.Has(ev) {
				missing = append(missing, ev)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			out = append(out, Waiting{Rule: r, Missing: missing})
		}
	}
	return out
}

// FiredOnce reports whether the rule has fired at least once.
func (r *Rule) FiredOnce() bool { return r.firedMark != -1 }
