// Package rules implements the rule-based run-time system that enacts
// workflows: event-condition-action rules, the general-rule and pending-rule
// tables, and the three implementation-level primitives the paper builds all
// coordinated-execution support on — AddRule(), AddEvent() and
// AddPrecondition() — which dynamically modify the rule sets of workflow
// instances.
//
// A rule fires when every event it requires is valid in the instance's event
// table and its precondition evaluates to true against the instance's data
// table. Fired rules are remembered by the multiset of required-event counts
// at fire time, so a rule fires again only after one of its events has been
// re-posted (which is what happens when a rollback invalidates events and
// re-execution posts them anew).
//
// # Reactive evaluation
//
// An engine Bound to its instance's event table dispatches reactively
// instead of scanning: an event→rules inverted index records which rules
// subscribe to each event, and a per-rule satisfied count is maintained
// incrementally from table mutations (the table notifies its observer on
// every post and invalidation). Rules whose events are all valid and whose
// firing memory does not cover the current event counts sit on the armed
// agenda; Evaluate examines only that agenda, re-checking preconditions of
// armed rules until they fire (data-only changes can make a precondition
// true without any event traffic, exactly as under the scan semantics).
// Firing order is deterministic: the agenda is drained in rule insertion
// order, byte-identical to the scan path (EvaluateScan keeps the original
// implementation as the reference; SetScanOnly forces it globally for
// equivalence testing).
package rules

import (
	"fmt"
	"sort"
	"sync/atomic"

	"crew/internal/event"
	"crew/internal/expr"
	"crew/internal/model"
)

// scanOnly forces every Evaluate through the reference scan path; the
// equivalence tests flip it to prove the indexed path fires identically.
var scanOnly atomic.Bool

// SetScanOnly globally disables (true) or re-enables (false) the indexed
// evaluation path. Intended for tests; safe to call concurrently.
func SetScanOnly(v bool) { scanOnly.Store(v) }

// ActionKind classifies what a fired rule triggers.
type ActionKind int

const (
	// ActExecute schedules a step for execution.
	ActExecute ActionKind = iota
	// ActCompensate schedules a step's compensation.
	ActCompensate
	// ActAbort aborts the workflow instance.
	ActAbort
	// ActNotify runs a custom callback; coordination rules injected via
	// AddRule use it to notify agents of other workflow instances.
	ActNotify
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case ActExecute:
		return "execute"
	case ActCompensate:
		return "compensate"
	case ActAbort:
		return "abort"
	case ActNotify:
		return "notify"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is the A of an ECA rule.
type Action struct {
	Kind ActionKind
	Step model.StepID
	// Fn runs for ActNotify actions. Coordination rules are regenerated on
	// recovery, so holding a closure here is safe.
	Fn func()
}

// Rule is an event-condition-action rule instance.
type Rule struct {
	// ID is unique within one instance's rule set.
	ID string
	// Events lists event names that must all be valid for the rule to fire.
	Events []string
	// Precond must evaluate true (against the data table) for the rule to
	// fire; nil means unconditional.
	Precond *expr.Expr
	// Action is what firing triggers.
	Action Action

	// firedMark is the sum of required-event counts at the last firing;
	// -1 if never fired.
	firedMark int

	// Engine-maintained incremental state (meaningful only while the owning
	// engine is bound to an event table):
	idx       int  // position in the engine's rule slice (insertion order)
	curMark   int  // current sum of required-event counts
	satisfied int  // required-event occurrences currently valid
	queued    bool // on the armed agenda
}

// cloneShared returns a shallow copy with firing state reset. The Events
// slice is shared copy-on-write: AddPrecondition reallocates before
// extending it. Only safe for immutable template rules (InstallRule).
func (r *Rule) cloneShared() *Rule {
	c := &Rule{ID: r.ID, Events: r.Events, Precond: r.Precond, Action: r.Action}
	c.firedMark = -1
	return c
}

// clone additionally copies the Events slice, insulating the engine from
// callers that reuse or mutate the rule they passed to AddRule.
func (r *Rule) clone() *Rule {
	c := r.cloneShared()
	c.Events = append([]string(nil), r.Events...)
	return c
}

// Engine is the per-instance rule engine holding the general-rule table.
// Rules that have been considered but are not yet satisfiable simply remain
// unfired — the pending-rule table of the paper is the subset of rules with
// missing events, exposed via Waiting.
type Engine struct {
	rules []*Rule
	byID  map[string]*Rule

	// Reactive state (see Bind).
	tab     *event.Table
	byEvent map[string][]*Rule
	armed   []*Rule
}

// NewEngine returns an empty rule engine.
func NewEngine() *Engine {
	return &Engine{byID: make(map[string]*Rule)}
}

// Bind attaches the engine to its instance's event table: the engine
// subscribes to table mutations and maintains per-rule satisfied counts
// incrementally, so Evaluate against the bound table dispatches from the
// armed agenda instead of scanning every rule. A table feeds at most one
// engine (per-instance ownership); rebinding replaces the subscription.
func (e *Engine) Bind(tab *event.Table) {
	e.tab = tab
	e.armed = e.armed[:0]
	tab.SetObserver(e.onEvent)
	for _, r := range e.rules {
		e.recount(r)
	}
}

// Bound returns the event table the engine is bound to, or nil.
func (e *Engine) Bound() *event.Table { return e.tab }

// onEvent is the table observer: it folds one mutation into the subscribed
// rules' counters and arms any rule that became fireable.
func (e *Engine) onEvent(name string, posted, wasValid, nowValid bool) {
	for _, r := range e.byEvent[name] {
		if posted {
			r.curMark++
		}
		if nowValid && !wasValid {
			r.satisfied++
		} else if wasValid && !nowValid {
			r.satisfied--
		}
		e.maybeArm(r)
	}
}

// recount recomputes a rule's counters from the bound table and arms it if
// fireable. Used on Bind and rule installation; steady-state maintenance is
// incremental via onEvent.
func (e *Engine) recount(r *Rule) {
	if e.tab == nil {
		return
	}
	r.curMark, r.satisfied = 0, 0
	for _, ev := range r.Events {
		r.curMark += e.tab.Count(ev)
		if e.tab.Has(ev) {
			r.satisfied++
		}
	}
	e.maybeArm(r)
}

// spent reports whether the rule's firing memory covers the current event
// counts: it must not fire again until an event is re-posted (or Rearm).
func (r *Rule) spent() bool {
	if r.firedMark == -1 {
		return false
	}
	if len(r.Events) == 0 {
		return true // eventless rules fire at most once
	}
	return r.firedMark == r.curMark
}

// maybeArm puts a fireable rule on the agenda. Rules leave the agenda only
// inside Evaluate (when fired or found stale), so a rule whose precondition
// is not yet true stays armed and is re-checked on every round — matching
// the scan semantics for data-only changes.
func (e *Engine) maybeArm(r *Rule) {
	if e.tab == nil || r.queued {
		return
	}
	if r.satisfied != len(r.Events) || r.spent() {
		return
	}
	r.queued = true
	e.armed = append(e.armed, r)
}

// subscribe registers the rule in the inverted index, one entry per
// required-event occurrence.
func (e *Engine) subscribe(r *Rule, events []string) {
	if len(events) == 0 {
		return
	}
	if e.byEvent == nil {
		e.byEvent = make(map[string][]*Rule)
	}
	for _, ev := range events {
		e.byEvent[ev] = append(e.byEvent[ev], r)
	}
}

// unsubscribe removes every index entry of the rule.
func (e *Engine) unsubscribe(r *Rule) {
	for _, ev := range r.Events {
		subs := e.byEvent[ev]
		kept := subs[:0]
		for _, s := range subs {
			if s != r {
				kept = append(kept, s)
			}
		}
		e.byEvent[ev] = kept
	}
}

// AddRule is the AddRule() primitive: it installs a rule into the instance's
// rule set. Adding an ID that already exists replaces the old rule in place
// (the rule set is "dynamically modified"); replacement keeps the old rule's
// firing position. The rule is copied: later caller mutations do not affect
// the engine.
func (e *Engine) AddRule(r *Rule) {
	e.install(r.clone())
}

// InstallRule installs a shared template rule without copying its Events
// slice. The caller must guarantee the template is immutable (the generated
// schema rules are); per-instance strengthening via AddPrecondition copies
// before extending, so clones never write through the shared slice.
func (e *Engine) InstallRule(r *Rule) {
	e.install(r.cloneShared())
}

func (e *Engine) install(nr *Rule) {
	if old, ok := e.byID[nr.ID]; ok {
		nr.idx = old.idx
		e.rules[nr.idx] = nr
		e.unsubscribe(old)
		old.queued = false // identity check drops its stale agenda entry
	} else {
		nr.idx = len(e.rules)
		e.rules = append(e.rules, nr)
	}
	e.byID[nr.ID] = nr
	e.subscribe(nr, nr.Events)
	e.recount(nr)
}

// RemoveRule discards a rule; it reports whether the rule existed.
func (e *Engine) RemoveRule(id string) bool {
	r, ok := e.byID[id]
	if !ok {
		return false
	}
	delete(e.byID, id)
	e.rules = append(e.rules[:r.idx], e.rules[r.idx+1:]...)
	for i := r.idx; i < len(e.rules); i++ {
		e.rules[i].idx = i
	}
	e.unsubscribe(r)
	r.queued = false
	return true
}

// Rule returns the rule with the given ID, or nil.
func (e *Engine) Rule(id string) *Rule { return e.byID[id] }

// Rules returns the rule set in insertion order.
func (e *Engine) Rules() []*Rule { return append([]*Rule(nil), e.rules...) }

// AddPrecondition is the AddPrecondition() primitive: it strengthens an
// existing rule with additional required events and/or an additional
// conjunct. The rule re-arms so the strengthened form is evaluated afresh.
func (e *Engine) AddPrecondition(ruleID string, extraEvents []string, extraCond *expr.Expr) error {
	r, ok := e.byID[ruleID]
	if !ok {
		return fmt.Errorf("rules: AddPrecondition: no rule %q", ruleID)
	}
	var added []string
	for _, ev := range extraEvents {
		found := false
		for _, have := range r.Events {
			if have == ev {
				found = true
				break
			}
		}
		if !found {
			added = append(added, ev)
		}
	}
	if len(added) > 0 {
		// The Events slice may be shared with other clones of the same
		// template: copy before extending.
		r.Events = append(append(make([]string, 0, len(r.Events)+len(added)), r.Events...), added...)
		e.subscribe(r, added)
		if e.tab != nil {
			for _, ev := range added {
				r.curMark += e.tab.Count(ev)
				if e.tab.Has(ev) {
					r.satisfied++
				}
			}
		}
	}
	if extraCond != nil {
		if r.Precond == nil {
			r.Precond = extraCond
		} else {
			combined, err := expr.Compile("(" + r.Precond.Source() + ") && (" + extraCond.Source() + ")")
			if err != nil {
				return fmt.Errorf("rules: AddPrecondition: %w", err)
			}
			r.Precond = combined
		}
	}
	r.firedMark = -1
	e.maybeArm(r)
	return nil
}

// AddEvent is the AddEvent() primitive: it posts an (external) event into the
// instance's event table. It returns whether the table changed. The caller
// follows up with Evaluate to fire newly satisfied rules.
func (e *Engine) AddEvent(tab *event.Table, name string) bool {
	return tab.Post(name)
}

// Rearm clears a rule's firing memory so it may fire again on the current
// event-table state; the navigation layer re-arms rules of steps whose
// events it invalidates (loop bodies, rollback regions).
func (e *Engine) Rearm(id string) {
	if r, ok := e.byID[id]; ok {
		r.firedMark = -1
		e.maybeArm(r)
	}
}

// RearmExecRules re-arms every execution rule of the given step (see
// IsExecRuleFor). Equivalent to RearmWhere with an IsExecRuleFor predicate,
// without the caller paying a closure allocation on the reset hot path.
func (e *Engine) RearmExecRules(step model.StepID) int {
	n := 0
	for _, r := range e.rules {
		if IsExecRuleFor(r.ID, step) {
			r.firedMark = -1
			e.maybeArm(r)
			n++
		}
	}
	return n
}

// RearmWhere re-arms every rule whose ID satisfies pred.
func (e *Engine) RearmWhere(pred func(id string) bool) int {
	n := 0
	for _, r := range e.rules {
		if pred(r.ID) {
			r.firedMark = -1
			e.maybeArm(r)
			n++
		}
	}
	return n
}

func mark(tab *event.Table, events []string) int {
	m := 0
	for _, ev := range events {
		m += tab.Count(ev)
	}
	return m
}

// satisfied reports whether all of the rule's events are valid.
func satisfied(tab *event.Table, r *Rule) bool {
	for _, ev := range r.Events {
		if !tab.Has(ev) {
			return false
		}
	}
	return true
}

// Evaluate considers the rule set against the event table and data
// environment and returns the rules that fire, in insertion order. Each
// returned rule's action has already been marked fired; ActNotify callbacks
// are NOT invoked here — the caller runs them (so it can count load and
// messages first).
//
// Against the bound event table this dispatches from the armed agenda
// (rules whose subscribed events are all valid), touching no other rule;
// any other table falls back to EvaluateScan. Both paths fire the same
// rules in the same order.
//
// The returned error carries the first precondition evaluation failure, but
// evaluation continues past failing rules (a bad condition on one rule must
// not wedge the instance).
func (e *Engine) Evaluate(tab *event.Table, env expr.Env) ([]*Rule, error) {
	if tab != nil && tab == e.tab && !scanOnly.Load() {
		return e.fireArmed(env)
	}
	//crew:allow hotalloc scan fallback serves foreign/unbound tables, never the bound hot path
	return e.EvaluateScan(tab, env)
}

// FireOn posts the named event into the bound table and fires the rules this
// makes fireable: the reactive AddEvent+Evaluate composition. Only rules
// subscribed to the event (plus already-armed rules awaiting data changes)
// are examined.
//
//crew:hotpath
func (e *Engine) FireOn(name string, env expr.Env) ([]*Rule, error) {
	if e.tab == nil {
		//crew:allow hotalloc misconfiguration error, reported once
		return nil, fmt.Errorf("rules: FireOn(%q): engine is not bound to an event table", name)
	}
	e.tab.Post(name)
	return e.Evaluate(e.tab, env)
}

// fireArmed drains the agenda in insertion order. Rules whose precondition
// is false (or errors) stay armed for the next round; fired and stale
// entries leave the agenda.
//
//crew:hotpath
func (e *Engine) fireArmed(env expr.Env) ([]*Rule, error) {
	if len(e.armed) == 0 {
		return nil, nil
	}
	// Insertion sort by rule position: the agenda is nearly always a handful
	// of entries, and sort.Slice would allocate on every round.
	for i := 1; i < len(e.armed); i++ {
		for j := i; j > 0 && e.armed[j].idx < e.armed[j-1].idx; j-- {
			e.armed[j], e.armed[j-1] = e.armed[j-1], e.armed[j]
		}
	}
	var fired []*Rule
	var firstErr error
	kept := e.armed[:0]
	for _, r := range e.armed {
		if e.byID[r.ID] != r || r.satisfied != len(r.Events) || r.spent() {
			r.queued = false // removed, replaced, or stale: drop
			continue
		}
		if r.Precond != nil {
			//crew:allow hotalloc preconditions are rare on the armed agenda; evaluation cost is theirs
			ok, err := r.Precond.EvalBool(env)
			if err != nil {
				if firstErr == nil {
					//crew:allow hotalloc error path, at most once per round
					firstErr = fmt.Errorf("rules: rule %s precondition: %w", r.ID, err)
				}
				kept = append(kept, r)
				continue
			}
			if !ok {
				kept = append(kept, r)
				continue
			}
		}
		if len(r.Events) == 0 {
			r.firedMark = 0
		} else {
			r.firedMark = r.curMark
		}
		r.queued = false
		fired = append(fired, r)
	}
	e.armed = kept
	return fired, firstErr
}

// EvaluateScan is the reference evaluation path: it scans every rule against
// the table. Kept for unbound engines, foreign tables, and as the semantic
// oracle the indexed path is tested against.
func (e *Engine) EvaluateScan(tab *event.Table, env expr.Env) ([]*Rule, error) {
	var fired []*Rule
	var firstErr error
	for _, r := range e.rules {
		if !satisfied(tab, r) {
			continue
		}
		m := mark(tab, r.Events)
		if r.firedMark == m && r.firedMark != -1 {
			continue // already fired for this satisfaction epoch
		}
		if len(r.Events) == 0 && r.firedMark != -1 {
			continue // eventless rules fire at most once
		}
		if r.Precond != nil {
			ok, err := r.Precond.EvalBool(env)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("rules: rule %s precondition: %w", r.ID, err)
				}
				continue
			}
			if !ok {
				continue
			}
		}
		r.firedMark = m
		if len(r.Events) == 0 {
			r.firedMark = 0
		}
		fired = append(fired, r)
	}
	return fired, firstErr
}

// Waiting describes a pending rule: satisfiable in principle but missing
// events. The distributed agent's predecessor-failure detector polls
// StepStatus for rules that wait on exactly one event for too long.
type Waiting struct {
	Rule    *Rule
	Missing []string
}

// WaitingRules returns the rules with at least one missing event, along with
// the missing names (sorted), in insertion order.
func (e *Engine) WaitingRules(tab *event.Table) []Waiting {
	var out []Waiting
	for _, r := range e.rules {
		var missing []string
		for _, ev := range r.Events {
			if !tab.Has(ev) {
				missing = append(missing, ev)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			out = append(out, Waiting{Rule: r, Missing: missing})
		}
	}
	return out
}

// FiredOnce reports whether the rule has fired at least once.
func (r *Rule) FiredOnce() bool { return r.firedMark != -1 }
