// Package laws implements a compact form of LAWS, the paper's workflow
// specification language: workflow definitions (steps, control and data
// flow, if-then-else and parallel branches, loops, joins, nesting), the
// failure-handling specification (rollback targets, compensation dependent
// sets, OCR re-execution conditions, abort compensation), and the
// coordinated-execution building blocks across workflows (relative ordering,
// mutual exclusion, rollback dependencies). Compilation produces a
// model.Library; the run-time systems then translate it into ECA rules, per
// the paper's LAWS -> rules pipeline.
//
// Grammar sketch (comments start with '#'):
//
//	workflow Order {
//	  inputs I1, I2
//	  step Reserve {
//	    program "reserve"
//	    compensation "unreserve"
//	    agents a1, a2
//	    inputs WF.I1
//	    outputs O1
//	    update
//	    incremental
//	    join any
//	    reexec when "WF.I1 > prev.WF.I1"
//	  }
//	  step Audit { nested AuditFlow }
//	  Reserve -> Bill
//	  Bill -> Ship when "Bill.O1 > 0"
//	  Ship ~> Reserve when "Ship.O1 < 3"    # loop back-arc
//	  on failure of Ship rollback to Reserve attempts 3
//	  compset Reserve, Bill
//	  abort compensate Reserve, Bill
//	}
//
//	order "parts" {
//	  pair Order.Reserve ~ Billing.Check
//	  pair Order.Ship    ~ Billing.Pay
//	}
//	mutex "inventory" { Order.Reserve, Billing.Check }
//	rollback of Order.Reserve forces Billing.Check
package laws

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"crew/internal/model"
)

// Compile parses LAWS source into a validated library.
func Compile(src string) (*model.Library, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, lib: model.NewLibrary()}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.lib.Validate(); err != nil {
		return nil, err
	}
	return p.lib, nil
}

// MustCompile is Compile panicking on error, for statically known sources.
func MustCompile(src string) *model.Library {
	lib, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return lib
}

// ---------------------------------------------------------------------------
// Lexer

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tLBrace
	tRBrace
	tComma
	tArrow     // ->
	tLoopArrow // ~>
	tTilde     // ~
	tDot       // .
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{':
			toks = append(toks, token{tLBrace, "{", line})
			i++
		case c == '}':
			toks = append(toks, token{tRBrace, "}", line})
			i++
		case c == ',':
			toks = append(toks, token{tComma, ",", line})
			i++
		case c == '.':
			toks = append(toks, token{tDot, ".", line})
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tArrow, "->", line})
			i += 2
		case c == '~' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tLoopArrow, "~>", line})
			i += 2
		case c == '~':
			toks = append(toks, token{tTilde, "~", line})
			i++
		case c == '"':
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				if src[j] == '\n' {
					line++
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("laws: line %d: unterminated string", line)
			}
			toks = append(toks, token{tString, b.String(), line})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], line})
			i = j
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], line})
			i = j
		default:
			return nil, fmt.Errorf("laws: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{tEOF, "", line})
	return toks, nil
}

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	toks []token
	pos  int
	lib  *model.Library
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("laws: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) keyword(word string) bool {
	if p.cur().kind == tIdent && p.cur().text == word {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return p.errf("expected %q, got %s", word, p.cur())
	}
	return nil
}

// identList parses ident (',' ident)*.
func (p *parser) identList() ([]string, error) {
	var out []string
	for {
		t, err := p.expect(tIdent, "identifier")
		if err != nil {
			return nil, err
		}
		out = append(out, t.text)
		if p.cur().kind != tComma {
			return out, nil
		}
		p.next()
	}
}

// dottedName parses ident ('.' ident)* and joins with dots.
func (p *parser) dottedName() (string, error) {
	t, err := p.expect(tIdent, "name")
	if err != nil {
		return "", err
	}
	name := t.text
	for p.cur().kind == tDot {
		p.next()
		t, err := p.expect(tIdent, "name after '.'")
		if err != nil {
			return "", err
		}
		name += "." + t.text
	}
	return name, nil
}

// stepRef parses Workflow.Step.
func (p *parser) stepRef() (model.StepRef, error) {
	wf, err := p.expect(tIdent, "workflow name")
	if err != nil {
		return model.StepRef{}, err
	}
	if _, err := p.expect(tDot, "'.'"); err != nil {
		return model.StepRef{}, err
	}
	st, err := p.expect(tIdent, "step name")
	if err != nil {
		return model.StepRef{}, err
	}
	return model.StepRef{Workflow: wf.text, Step: model.StepID(st.text)}, nil
}

func (p *parser) parse() error {
	for {
		switch {
		case p.cur().kind == tEOF:
			return nil
		case p.keyword("workflow"):
			if err := p.parseWorkflow(); err != nil {
				return err
			}
		case p.keyword("order"):
			if err := p.parseOrder(); err != nil {
				return err
			}
		case p.keyword("mutex"):
			if err := p.parseMutex(); err != nil {
				return err
			}
		case p.keyword("rollback"):
			if err := p.parseRollbackDep(); err != nil {
				return err
			}
		default:
			return p.errf("expected workflow, order, mutex or rollback, got %s", p.cur())
		}
	}
}

func (p *parser) parseWorkflow() error {
	name, err := p.expect(tIdent, "workflow name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return err
	}
	s := &model.Schema{Name: name.text, Steps: make(map[model.StepID]*model.Step)}

	for p.cur().kind != tRBrace {
		switch {
		case p.keyword("inputs"):
			ins, err := p.identList()
			if err != nil {
				return err
			}
			s.Inputs = append(s.Inputs, ins...)
		case p.keyword("step"):
			if err := p.parseStep(s); err != nil {
				return err
			}
		case p.keyword("on"):
			if err := p.parseFailure(s); err != nil {
				return err
			}
		case p.keyword("compset"):
			ids, err := p.identList()
			if err != nil {
				return err
			}
			set := make([]model.StepID, len(ids))
			for i, id := range ids {
				set[i] = model.StepID(id)
			}
			s.CompSets = append(s.CompSets, set)
		case p.keyword("abort"):
			if err := p.expectKeyword("compensate"); err != nil {
				return err
			}
			ids, err := p.identList()
			if err != nil {
				return err
			}
			for _, id := range ids {
				s.AbortCompensate = append(s.AbortCompensate, model.StepID(id))
			}
		case p.cur().kind == tIdent:
			if err := p.parseArc(s); err != nil {
				return err
			}
		default:
			return p.errf("unexpected %s in workflow body", p.cur())
		}
	}
	p.next() // '}'
	p.lib.Add(s)
	return nil
}

func (p *parser) parseStep(s *model.Schema) error {
	idTok, err := p.expect(tIdent, "step name")
	if err != nil {
		return err
	}
	st := &model.Step{ID: model.StepID(idTok.text)}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return err
	}
	for p.cur().kind != tRBrace {
		switch {
		case p.keyword("program"):
			t, err := p.expect(tString, "program name string")
			if err != nil {
				return err
			}
			st.Program = t.text
		case p.keyword("nested"):
			t, err := p.expect(tIdent, "nested workflow name")
			if err != nil {
				return err
			}
			st.Nested = t.text
		case p.keyword("compensation"):
			t, err := p.expect(tString, "compensation program string")
			if err != nil {
				return err
			}
			st.Compensation = t.text
		case p.keyword("agents"):
			ag, err := p.identList()
			if err != nil {
				return err
			}
			st.EligibleAgents = append(st.EligibleAgents, ag...)
		case p.keyword("inputs"):
			for {
				name, err := p.dottedName()
				if err != nil {
					return err
				}
				st.Inputs = append(st.Inputs, name)
				if p.cur().kind != tComma {
					break
				}
				p.next()
			}
		case p.keyword("outputs"):
			outs, err := p.identList()
			if err != nil {
				return err
			}
			st.Outputs = append(st.Outputs, outs...)
		case p.keyword("update"):
			st.Update = true
		case p.keyword("incremental"):
			st.Incremental = true
		case p.keyword("join"):
			switch {
			case p.keyword("any"):
				st.Join = model.JoinAny
			case p.keyword("all"):
				st.Join = model.JoinAll
			default:
				return p.errf("expected 'any' or 'all' after join")
			}
		case p.keyword("reexec"):
			if err := p.expectKeyword("when"); err != nil {
				return err
			}
			t, err := p.expect(tString, "condition string")
			if err != nil {
				return err
			}
			st.ReexecCond = t.text
		case p.keyword("name"):
			t, err := p.expect(tString, "step label string")
			if err != nil {
				return err
			}
			st.Name = t.text
		default:
			return p.errf("unexpected %s in step body", p.cur())
		}
	}
	p.next() // '}'
	if _, dup := s.Steps[st.ID]; dup {
		return fmt.Errorf("laws: workflow %s: duplicate step %s", s.Name, st.ID)
	}
	s.AddStep(st)
	return nil
}

// parseArc parses "From -> To [when "cond"]" and "From ~> To when "cond"",
// with comma-separated targets for parallel fan-out.
func (p *parser) parseArc(s *model.Schema) error {
	from, err := p.expect(tIdent, "step name")
	if err != nil {
		return err
	}
	loop := false
	switch p.cur().kind {
	case tArrow:
		p.next()
	case tLoopArrow:
		loop = true
		p.next()
	default:
		return p.errf("expected '->' or '~>' after %q", from.text)
	}
	targets, err := p.identList()
	if err != nil {
		return err
	}
	cond := ""
	if p.keyword("when") {
		t, err := p.expect(tString, "condition string")
		if err != nil {
			return err
		}
		cond = t.text
	}
	for _, to := range targets {
		s.AddArc(model.Arc{
			From: model.StepID(from.text),
			To:   model.StepID(to),
			Kind: model.Control,
			Cond: cond,
			Loop: loop,
		})
	}
	return nil
}

// parseFailure parses "on failure of X rollback to Y [attempts N]".
func (p *parser) parseFailure(s *model.Schema) error {
	if err := p.expectKeyword("failure"); err != nil {
		return err
	}
	if err := p.expectKeyword("of"); err != nil {
		return err
	}
	step, err := p.expect(tIdent, "step name")
	if err != nil {
		return err
	}
	if err := p.expectKeyword("rollback"); err != nil {
		return err
	}
	if err := p.expectKeyword("to"); err != nil {
		return err
	}
	target, err := p.expect(tIdent, "step name")
	if err != nil {
		return err
	}
	attempts := 0
	if p.keyword("attempts") {
		t, err := p.expect(tNumber, "attempt count")
		if err != nil {
			return err
		}
		attempts, err = strconv.Atoi(t.text)
		if err != nil {
			return p.errf("bad attempt count %q", t.text)
		}
	}
	if s.OnFailure == nil {
		s.OnFailure = make(map[model.StepID]model.FailurePolicy)
	}
	s.OnFailure[model.StepID(step.text)] = model.FailurePolicy{
		RollbackTo:  model.StepID(target.text),
		MaxAttempts: attempts,
	}
	return nil
}

// parseOrder parses: order "name" { pair A.S ~ B.T ... }.
func (p *parser) parseOrder() error {
	name, err := p.expect(tString, "spec name string")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return err
	}
	spec := model.CoordSpec{Kind: model.RelativeOrder, Name: name.text}
	for p.cur().kind != tRBrace {
		if err := p.expectKeyword("pair"); err != nil {
			return err
		}
		a, err := p.stepRef()
		if err != nil {
			return err
		}
		if _, err := p.expect(tTilde, "'~'"); err != nil {
			return err
		}
		b, err := p.stepRef()
		if err != nil {
			return err
		}
		spec.Pairs = append(spec.Pairs, model.ConflictPair{A: a, B: b})
	}
	p.next() // '}'
	p.lib.AddCoord(spec)
	return nil
}

// parseMutex parses: mutex "name" { A.S, B.T, ... }.
func (p *parser) parseMutex() error {
	name, err := p.expect(tString, "spec name string")
	if err != nil {
		return err
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return err
	}
	spec := model.CoordSpec{Kind: model.Mutex, Name: name.text}
	for p.cur().kind != tRBrace {
		ref, err := p.stepRef()
		if err != nil {
			return err
		}
		spec.MutexSteps = append(spec.MutexSteps, ref)
		if p.cur().kind == tComma {
			p.next()
		}
	}
	p.next() // '}'
	p.lib.AddCoord(spec)
	return nil
}

// parseRollbackDep parses: rollback of A.S forces B.T.
func (p *parser) parseRollbackDep() error {
	if err := p.expectKeyword("of"); err != nil {
		return err
	}
	trigger, err := p.stepRef()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("forces"); err != nil {
		return err
	}
	target, err := p.stepRef()
	if err != nil {
		return err
	}
	p.lib.AddCoord(model.CoordSpec{
		Kind:    model.RollbackDep,
		Name:    fmt.Sprintf("rd:%s:%s", trigger, target),
		Trigger: trigger,
		Target:  target,
	})
	return nil
}
