package laws

import (
	"strings"
	"testing"

	"crew/internal/model"
)

const orderSrc = `
# Order processing, per the paper's motivating example.
workflow Order {
  inputs I1, I2

  step Reserve {
    program "reserve"
    compensation "unreserve"
    agents a1, a2
    inputs WF.I1
    outputs O1, O2
    update
    reexec when "WF.I1 > prev.WF.I1"
  }
  step Bill {
    program "bill"
    compensation "refund"
    inputs Reserve.O1
    outputs O1
    incremental
  }
  step Ship {
    program "ship"
    inputs Bill.O1
    outputs O1
  }
  step Notify { program "notify" }
  step Done { program "done" join any }

  Reserve -> Bill
  Bill -> Ship when "Bill.O1 > 0"
  Bill -> Notify when "Bill.O1 <= 0"
  Ship -> Done
  Notify -> Done
  Ship ~> Reserve when "Ship.O1 < 0"

  on failure of Ship rollback to Reserve attempts 4
  compset Reserve, Bill
  abort compensate Reserve, Bill
}

workflow Billing {
  step Check { program "check" outputs O1 }
  step Pay { program "pay" inputs Check.O1 }
  Check -> Pay
}

order "parts" {
  pair Order.Reserve ~ Billing.Check
  pair Order.Ship    ~ Billing.Pay
}

mutex "inventory" { Order.Reserve, Billing.Check }

rollback of Order.Reserve forces Billing.Check
`

func TestCompileOrderExample(t *testing.T) {
	lib, err := Compile(orderSrc)
	if err != nil {
		t.Fatal(err)
	}
	names := lib.Names()
	if len(names) != 2 || names[0] != "Order" || names[1] != "Billing" {
		t.Fatalf("Names = %v", names)
	}
	s := lib.Schema("Order")
	if len(s.Steps) != 5 {
		t.Errorf("Order steps = %d", len(s.Steps))
	}
	if len(s.Inputs) != 2 || s.Inputs[0] != "I1" {
		t.Errorf("inputs = %v", s.Inputs)
	}

	res := s.Steps["Reserve"]
	if res.Program != "reserve" || res.Compensation != "unreserve" || !res.Update {
		t.Errorf("Reserve = %+v", res)
	}
	if len(res.EligibleAgents) != 2 || res.EligibleAgents[0] != "a1" {
		t.Errorf("Reserve agents = %v", res.EligibleAgents)
	}
	if res.ReexecCond != "WF.I1 > prev.WF.I1" {
		t.Errorf("Reserve reexec = %q", res.ReexecCond)
	}
	if len(res.Outputs) != 2 {
		t.Errorf("Reserve outputs = %v", res.Outputs)
	}
	if !lib.Schema("Order").Steps["Bill"].Incremental {
		t.Error("Bill should be incremental")
	}
	if s.Steps["Done"].Join != model.JoinAny {
		t.Error("Done should join any")
	}

	// Arcs: conditional branch + loop back-arc.
	var condArcs, loopArcs int
	for _, a := range s.Arcs {
		if a.Cond != "" && !a.Loop {
			condArcs++
		}
		if a.Loop {
			loopArcs++
			if a.From != "Ship" || a.To != "Reserve" || a.Cond != "Ship.O1 < 0" {
				t.Errorf("loop arc = %+v", a)
			}
		}
	}
	if condArcs != 2 || loopArcs != 1 {
		t.Errorf("arcs: cond=%d loop=%d", condArcs, loopArcs)
	}

	// Failure policy.
	pol, ok := s.OnFailure["Ship"]
	if !ok || pol.RollbackTo != "Reserve" || pol.MaxAttempts != 4 {
		t.Errorf("OnFailure = %+v", pol)
	}
	// Compset and abort.
	if len(s.CompSets) != 1 || len(s.CompSets[0]) != 2 {
		t.Errorf("CompSets = %v", s.CompSets)
	}
	if len(s.AbortCompensate) != 2 {
		t.Errorf("AbortCompensate = %v", s.AbortCompensate)
	}

	// Coordination specs.
	if len(lib.Coord) != 3 {
		t.Fatalf("coord specs = %d", len(lib.Coord))
	}
	ro := lib.Coord[0]
	if ro.Kind != model.RelativeOrder || ro.Name != "parts" || len(ro.Pairs) != 2 {
		t.Errorf("order spec = %+v", ro)
	}
	if ro.Pairs[1].B != (model.StepRef{Workflow: "Billing", Step: "Pay"}) {
		t.Errorf("pair = %+v", ro.Pairs[1])
	}
	mx := lib.Coord[1]
	if mx.Kind != model.Mutex || len(mx.MutexSteps) != 2 {
		t.Errorf("mutex spec = %+v", mx)
	}
	rd := lib.Coord[2]
	if rd.Kind != model.RollbackDep || rd.Trigger.Step != "Reserve" || rd.Target.Workflow != "Billing" {
		t.Errorf("rollback dep = %+v", rd)
	}
}

func TestCompileNestedStep(t *testing.T) {
	lib, err := Compile(`
workflow Child { step C { program "c" outputs R } }
workflow Parent {
  step A { program "a" outputs O1 }
  step N { nested Child inputs A.O1 outputs R }
  A -> N
}`)
	if err != nil {
		t.Fatal(err)
	}
	n := lib.Schema("Parent").Steps["N"]
	if n.Nested != "Child" || n.Program != "" {
		t.Errorf("nested step = %+v", n)
	}
}

func TestParallelFanOut(t *testing.T) {
	lib, err := Compile(`
workflow W {
  step A { program "a" }
  step B { program "b" }
  step C { program "c" }
  step J { program "j" join all }
  A -> B, C
  B -> J
  C -> J
}`)
	if err != nil {
		t.Fatal(err)
	}
	s := lib.Schema("W")
	if !s.IsParallelBranch("A") {
		t.Error("A should fan out in parallel")
	}
	if !s.IsConfluence("J") {
		t.Error("J should join")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	_, err := Compile("  # just a comment\n\n workflow W { # inline\n step A { program \"p\" } }\n#tail")
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":                               "expected workflow",
		"workflow":                              "workflow name",
		"workflow W":                            "'{'",
		"workflow W { step A { program \"p\" }": "", // unterminated: EOF inside body
		"workflow W { step A { bogus } }":       "unexpected",
		"workflow W { step A { program \"p\" } A }":                                        "'->' or '~>'",
		"workflow W { step A { program \"p\" } A -> }":                                     "identifier",
		"workflow W { step A { program \"p\" } step A { program \"q\" } }":                 "duplicate step",
		"workflow W { step A { join sideways program \"p\" } }":                            "'any' or 'all'",
		"workflow W { step A { program \"p\" reexec \"x\" } }":                             "when",
		"workflow W { step A { program \"p\" } on failure of A rollback to A attempts x }": "",
		`order "o" { pair A ~ B.C }`:                                                       "'.'",
		`mutex "m" { A.B`:                                                                  "",
		`rollback of A.B forces`:                                                           "workflow name",
		`workflow W { step A { program "p" } } order "o" { pear A.B ~ C.D }`:               `"pair"`,
		"workflow W { step A { program \"p\" $ } }":                                        "unexpected character",
		`workflow W { step A { program "unterminated } }`:                                  "unterminated string",
	}
	for src, frag := range cases {
		_, err := Compile(src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
			continue
		}
		if frag != "" && !strings.Contains(err.Error(), frag) {
			t.Errorf("Compile(%q) error %q does not mention %q", src, err, frag)
		}
	}
}

func TestCompileRunsLibraryValidation(t *testing.T) {
	// Syntactically fine but semantically invalid: arc to unknown step.
	_, err := Compile(`workflow W { step A { program "p" } A -> Missing }`)
	if err == nil || !strings.Contains(err.Error(), "unknown step") {
		t.Errorf("expected validation error, got %v", err)
	}
	// Unknown nested workflow.
	_, err = Compile(`workflow W { step A { nested Ghost } }`)
	if err == nil || !strings.Contains(err.Error(), "nests unknown workflow") {
		t.Errorf("expected nested validation error, got %v", err)
	}
}

func TestMustCompile(t *testing.T) {
	lib := MustCompile(`workflow W { step A { program "p" } }`)
	if lib.Schema("W") == nil {
		t.Error("MustCompile lost schema")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad source")
		}
	}()
	MustCompile("not laws")
}

func TestLineNumbersInErrors(t *testing.T) {
	_, err := Compile("workflow W {\n  step A { program \"p\" }\n  bogus -> }\n}")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should cite line 3: %v", err)
	}
}
