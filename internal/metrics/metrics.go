// Package metrics provides the measurement substrate for the CREW
// reproduction: per-node load units and system-wide physical message counts,
// broken down by the five mechanism classes the paper's evaluation compares
// (normal execution, workflow input change, workflow abort, failure handling,
// and coordinated execution).
//
// The paper measures "load at engine" in units of l, the navigation and other
// load per step (number of instructions). Here one load unit corresponds to
// one navigation action (rule evaluation, table update, packet pack/unpack,
// or scheduling decision), which preserves the ratios that Tables 4-6 report.
//
// The counters are the hottest write path in the system: every agent and
// engine goroutine reports into one Collector per experiment run. All
// counters are therefore plain atomics — message counts are a fixed array of
// atomic.Int64, and per-node load is recorded through pre-registered
// NodeRecorder handles bound at system construction, so the steady state does
// zero map lookups and takes zero locks.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Mechanism classifies load and messages according to the paper's five
// mechanism rows in Tables 4, 5 and 6.
type Mechanism int

const (
	// Normal is ordinary forward execution: scheduling, navigation, step
	// dispatch, commit processing.
	Normal Mechanism = iota
	// InputChange covers work caused by user-initiated workflow input
	// changes (WorkflowChangeInputs / InputsChanged).
	InputChange
	// Abort covers user-initiated workflow aborts and the compensations
	// they trigger.
	Abort
	// Failure covers logical step-failure handling: rollback, thread
	// halting, event invalidation, compensation and re-execution.
	Failure
	// Coordination covers coordinated-execution requirements: mutual
	// exclusion, relative ordering and rollback dependencies across
	// concurrent workflows.
	Coordination

	numMechanisms = int(Coordination) + 1
)

// Mechanisms lists all mechanism classes in presentation order.
var Mechanisms = [...]Mechanism{Normal, InputChange, Abort, Failure, Coordination}

// String returns the mechanism name as used in the paper's tables.
func (m Mechanism) String() string {
	switch m {
	case Normal:
		return "Normal Execution"
	case InputChange:
		return "Workflow Input Change"
	case Abort:
		return "Workflow Abort"
	case Failure:
		return "Failure Handling"
	case Coordination:
		return "Coordinated Execution"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

type nodeCounters struct {
	load [numMechanisms]atomic.Int64
}

// NodeRecorder is a pre-registered, lock-free handle for recording load at
// one node. Handles are handed to engines and agents at system construction
// (via Collector.Node) so the per-step accounting in the hot path is a single
// atomic add — no map lookup, no lock. The zero NodeRecorder is valid and
// discards all adds, which is how deployments without a Collector run.
type NodeRecorder struct {
	c *nodeCounters
}

// Add records units of load for mechanism m at the recorder's node.
func (r NodeRecorder) Add(m Mechanism, units int64) {
	if r.c == nil || units == 0 {
		return
	}
	r.c.load[m].Add(units)
}

// Collector accumulates load units per node and message counts per mechanism.
// It is safe for concurrent use; every agent, engine and transport in the
// repository reports into one Collector per experiment run.
type Collector struct {
	msgs [numMechanisms]atomic.Int64

	// Recovery counters, fed by the fault injector and the transport when a
	// fault plan is active: physical retransmissions charged by drop faults,
	// node crashes and recoveries applied, total recovery time in
	// delivered-message ticks, and instances that were running at some crash
	// and still reached a terminal status.
	retransmits   atomic.Int64
	crashes       atomic.Int64
	recoveries    atomic.Int64
	recoveryTicks atomic.Int64
	survived      atomic.Int64

	// mu guards the nodes map only. Registration happens once per node at
	// system construction; steady-state writes go through NodeRecorder
	// handles and never touch the map.
	mu    sync.RWMutex
	nodes map[string]*nodeCounters
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{nodes: make(map[string]*nodeCounters)}
}

// Node registers (or finds) a node and returns its lock-free recorder handle.
// Calling Node on a nil Collector returns the discarding zero handle.
func (c *Collector) Node(name string) NodeRecorder {
	if c == nil {
		return NodeRecorder{}
	}
	c.mu.RLock()
	nc := c.nodes[name]
	c.mu.RUnlock()
	if nc == nil {
		c.mu.Lock()
		nc = c.nodes[name]
		if nc == nil {
			nc = &nodeCounters{}
			c.nodes[name] = nc
		}
		c.mu.Unlock()
	}
	return NodeRecorder{c: nc}
}

// AddLoad records units of load at node for mechanism m.
func (c *Collector) AddLoad(node string, m Mechanism, units int64) {
	if units == 0 {
		return
	}
	c.Node(node).Add(m, units)
}

// AddMessages records n physical messages of mechanism class m.
func (c *Collector) AddMessages(m Mechanism, n int64) {
	if n == 0 {
		return
	}
	c.msgs[m].Add(n)
}

// Messages returns the total number of physical messages recorded for m.
func (c *Collector) Messages(m Mechanism) int64 {
	return c.msgs[m].Load()
}

// AddRetransmits records n physical retransmissions charged by drop faults.
func (c *Collector) AddRetransmits(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.retransmits.Add(n)
}

// Retransmits returns the number of fault-injected retransmissions.
func (c *Collector) Retransmits() int64 { return c.retransmits.Load() }

// AddCrash records one applied node crash.
func (c *Collector) AddCrash() {
	if c == nil {
		return
	}
	c.crashes.Add(1)
}

// Crashes returns the number of node crashes applied.
func (c *Collector) Crashes() int64 { return c.crashes.Load() }

// AddRecovery records one node recovery that took ticks delivered-message
// ticks (the network's logical clock) from crash to recovery.
func (c *Collector) AddRecovery(ticks int64) {
	if c == nil {
		return
	}
	c.recoveries.Add(1)
	c.recoveryTicks.Add(ticks)
}

// Recoveries returns the number of node recoveries applied.
func (c *Collector) Recoveries() int64 { return c.recoveries.Load() }

// RecoveryTicks returns the total recovery time across all recoveries, in
// delivered-message ticks.
func (c *Collector) RecoveryTicks() int64 { return c.recoveryTicks.Load() }

// AddSurvived records n instances that were running when a node crashed and
// still reached a terminal status.
func (c *Collector) AddSurvived(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.survived.Add(n)
}

// Survived returns the number of instances that survived a crash.
func (c *Collector) Survived() int64 { return c.survived.Load() }

// TotalMessages returns the number of messages across all mechanisms.
func (c *Collector) TotalMessages() int64 {
	var t int64
	for i := range c.msgs {
		t += c.msgs[i].Load()
	}
	return t
}

// NodeLoad returns the load recorded at node for mechanism m.
func (c *Collector) NodeLoad(node string, m Mechanism) int64 {
	c.mu.RLock()
	nc := c.nodes[node]
	c.mu.RUnlock()
	if nc != nil {
		return nc.load[m].Load()
	}
	return 0
}

// TotalLoad returns the load summed over all nodes for mechanism m.
func (c *Collector) TotalLoad(m Mechanism) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var t int64
	for _, nc := range c.nodes {
		t += nc.load[m].Load()
	}
	return t
}

// Nodes returns the sorted names of all nodes that registered with the
// Collector (via AddLoad or Node).
func (c *Collector) Nodes() []string {
	c.mu.RLock()
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	return names
}

// MaxNodeLoad returns the highest per-node load for mechanism m and the node
// that carries it. The paper's "load at engine" for a scalability comparison
// is the load at the most loaded scheduling node.
func (c *Collector) MaxNodeLoad(m Mechanism) (node string, load int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for n, nc := range c.nodes {
		l := nc.load[m].Load()
		if l > load || (l == load && (node == "" || n < node)) {
			node, load = n, l
		}
	}
	return node, load
}

// MeanNodeLoad returns the average per-node load for mechanism m over nodes
// registered with the Collector.
func (c *Collector) MeanNodeLoad(m Mechanism) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.nodes) == 0 {
		return 0
	}
	var t int64
	for _, nc := range c.nodes {
		t += nc.load[m].Load()
	}
	return float64(t) / float64(len(c.nodes))
}

// Snapshot is an immutable copy of a Collector's counters.
type Snapshot struct {
	NodeLoad map[string][numMechanisms]int64
	Messages [numMechanisms]int64
}

// Snapshot copies the current counters. The copy is not an atomic cut across
// nodes: counters written concurrently with the snapshot land on either side.
func (c *Collector) Snapshot() Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := Snapshot{NodeLoad: make(map[string][numMechanisms]int64, len(c.nodes))}
	for n, nc := range c.nodes {
		var load [numMechanisms]int64
		for i := range nc.load {
			load[i] = nc.load[i].Load()
		}
		s.NodeLoad[n] = load
	}
	for i := range c.msgs {
		s.Messages[i] = c.msgs[i].Load()
	}
	return s
}

// MessagesOf returns the message count for m in the snapshot.
func (s Snapshot) MessagesOf(m Mechanism) int64 { return s.Messages[m] }

// Reset clears all counters and forgets all nodes. NodeRecorder handles
// obtained before the Reset stay valid but write to detached counters; systems
// are expected to re-register after a Reset (in practice each experiment run
// builds a fresh Collector).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.nodes = make(map[string]*nodeCounters)
	c.mu.Unlock()
	for i := range c.msgs {
		c.msgs[i].Store(0)
	}
	c.retransmits.Store(0)
	c.crashes.Store(0)
	c.recoveries.Store(0)
	c.recoveryTicks.Store(0)
	c.survived.Store(0)
}

// String renders a compact human-readable report, one line per mechanism.
func (c *Collector) String() string {
	var b strings.Builder
	for _, m := range Mechanisms {
		node, load := c.MaxNodeLoad(m)
		fmt.Fprintf(&b, "%-22s msgs=%-8d totalLoad=%-8d maxNode=%s(%d)\n",
			m, c.Messages(m), c.TotalLoad(m), node, load)
	}
	return b.String()
}

// PerInstance scales a raw count by the number of instances, as the paper
// reports everything per workflow instance.
func PerInstance(total int64, instances int) float64 {
	if instances <= 0 {
		return 0
	}
	return float64(total) / float64(instances)
}
