// Package metrics provides the measurement substrate for the CREW
// reproduction: per-node load units and system-wide physical message counts,
// broken down by the five mechanism classes the paper's evaluation compares
// (normal execution, workflow input change, workflow abort, failure handling,
// and coordinated execution).
//
// The paper measures "load at engine" in units of l, the navigation and other
// load per step (number of instructions). Here one load unit corresponds to
// one navigation action (rule evaluation, table update, packet pack/unpack,
// or scheduling decision), which preserves the ratios that Tables 4-6 report.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mechanism classifies load and messages according to the paper's five
// mechanism rows in Tables 4, 5 and 6.
type Mechanism int

const (
	// Normal is ordinary forward execution: scheduling, navigation, step
	// dispatch, commit processing.
	Normal Mechanism = iota
	// InputChange covers work caused by user-initiated workflow input
	// changes (WorkflowChangeInputs / InputsChanged).
	InputChange
	// Abort covers user-initiated workflow aborts and the compensations
	// they trigger.
	Abort
	// Failure covers logical step-failure handling: rollback, thread
	// halting, event invalidation, compensation and re-execution.
	Failure
	// Coordination covers coordinated-execution requirements: mutual
	// exclusion, relative ordering and rollback dependencies across
	// concurrent workflows.
	Coordination

	numMechanisms = int(Coordination) + 1
)

// Mechanisms lists all mechanism classes in presentation order.
var Mechanisms = [...]Mechanism{Normal, InputChange, Abort, Failure, Coordination}

// String returns the mechanism name as used in the paper's tables.
func (m Mechanism) String() string {
	switch m {
	case Normal:
		return "Normal Execution"
	case InputChange:
		return "Workflow Input Change"
	case Abort:
		return "Workflow Abort"
	case Failure:
		return "Failure Handling"
	case Coordination:
		return "Coordinated Execution"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

type nodeCounters struct {
	load [numMechanisms]int64
}

// Collector accumulates load units per node and message counts per mechanism.
// It is safe for concurrent use; every agent, engine and transport in the
// repository reports into one Collector per experiment run.
type Collector struct {
	mu    sync.Mutex
	nodes map[string]*nodeCounters
	msgs  [numMechanisms]int64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{nodes: make(map[string]*nodeCounters)}
}

// AddLoad records units of load at node for mechanism m.
func (c *Collector) AddLoad(node string, m Mechanism, units int64) {
	if units == 0 {
		return
	}
	c.mu.Lock()
	nc := c.nodes[node]
	if nc == nil {
		nc = &nodeCounters{}
		c.nodes[node] = nc
	}
	nc.load[m] += units
	c.mu.Unlock()
}

// AddMessages records n physical messages of mechanism class m.
func (c *Collector) AddMessages(m Mechanism, n int64) {
	if n == 0 {
		return
	}
	c.mu.Lock()
	c.msgs[m] += n
	c.mu.Unlock()
}

// Messages returns the total number of physical messages recorded for m.
func (c *Collector) Messages(m Mechanism) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.msgs[m]
}

// TotalMessages returns the number of messages across all mechanisms.
func (c *Collector) TotalMessages() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, v := range c.msgs {
		t += v
	}
	return t
}

// NodeLoad returns the load recorded at node for mechanism m.
func (c *Collector) NodeLoad(node string, m Mechanism) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if nc := c.nodes[node]; nc != nil {
		return nc.load[m]
	}
	return 0
}

// TotalLoad returns the load summed over all nodes for mechanism m.
func (c *Collector) TotalLoad(m Mechanism) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, nc := range c.nodes {
		t += nc.load[m]
	}
	return t
}

// Nodes returns the sorted names of all nodes that recorded load.
func (c *Collector) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MaxNodeLoad returns the highest per-node load for mechanism m and the node
// that carries it. The paper's "load at engine" for a scalability comparison
// is the load at the most loaded scheduling node.
func (c *Collector) MaxNodeLoad(m Mechanism) (node string, load int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for n, nc := range c.nodes {
		if nc.load[m] > load || (nc.load[m] == load && (node == "" || n < node)) {
			node, load = n, nc.load[m]
		}
	}
	return node, load
}

// MeanNodeLoad returns the average per-node load for mechanism m over nodes
// that recorded any load at all.
func (c *Collector) MeanNodeLoad(m Mechanism) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.nodes) == 0 {
		return 0
	}
	var t int64
	for _, nc := range c.nodes {
		t += nc.load[m]
	}
	return float64(t) / float64(len(c.nodes))
}

// Snapshot is an immutable copy of a Collector's counters.
type Snapshot struct {
	NodeLoad map[string][numMechanisms]int64
	Messages [numMechanisms]int64
}

// Snapshot copies the current counters.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{NodeLoad: make(map[string][numMechanisms]int64, len(c.nodes))}
	for n, nc := range c.nodes {
		s.NodeLoad[n] = nc.load
	}
	s.Messages = c.msgs
	return s
}

// MessagesOf returns the message count for m in the snapshot.
func (s Snapshot) MessagesOf(m Mechanism) int64 { return s.Messages[m] }

// Reset clears all counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.nodes = make(map[string]*nodeCounters)
	c.msgs = [numMechanisms]int64{}
	c.mu.Unlock()
}

// String renders a compact human-readable report, one line per mechanism.
func (c *Collector) String() string {
	var b strings.Builder
	for _, m := range Mechanisms {
		node, load := c.MaxNodeLoad(m)
		fmt.Fprintf(&b, "%-22s msgs=%-8d totalLoad=%-8d maxNode=%s(%d)\n",
			m, c.Messages(m), c.TotalLoad(m), node, load)
	}
	return b.String()
}

// PerInstance scales a raw count by the number of instances, as the paper
// reports everything per workflow instance.
func PerInstance(total int64, instances int) float64 {
	if instances <= 0 {
		return 0
	}
	return float64(total) / float64(instances)
}
