package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestMechanismString(t *testing.T) {
	cases := map[Mechanism]string{
		Normal:       "Normal Execution",
		InputChange:  "Workflow Input Change",
		Abort:        "Workflow Abort",
		Failure:      "Failure Handling",
		Coordination: "Coordinated Execution",
		Mechanism(9): "Mechanism(9)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mechanism(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestAddLoadAndQueries(t *testing.T) {
	c := NewCollector()
	c.AddLoad("engine", Normal, 10)
	c.AddLoad("engine", Normal, 5)
	c.AddLoad("agent1", Normal, 3)
	c.AddLoad("agent1", Failure, 7)

	if got := c.NodeLoad("engine", Normal); got != 15 {
		t.Errorf("NodeLoad(engine, Normal) = %d, want 15", got)
	}
	if got := c.NodeLoad("agent1", Failure); got != 7 {
		t.Errorf("NodeLoad(agent1, Failure) = %d, want 7", got)
	}
	if got := c.NodeLoad("missing", Normal); got != 0 {
		t.Errorf("NodeLoad(missing) = %d, want 0", got)
	}
	if got := c.TotalLoad(Normal); got != 18 {
		t.Errorf("TotalLoad(Normal) = %d, want 18", got)
	}
	node, load := c.MaxNodeLoad(Normal)
	if node != "engine" || load != 15 {
		t.Errorf("MaxNodeLoad(Normal) = (%q, %d), want (engine, 15)", node, load)
	}
	if got := c.MeanNodeLoad(Normal); got != 9 {
		t.Errorf("MeanNodeLoad(Normal) = %g, want 9", got)
	}
}

func TestAddLoadZeroIsNoop(t *testing.T) {
	c := NewCollector()
	c.AddLoad("n", Normal, 0)
	if len(c.Nodes()) != 0 {
		t.Errorf("zero-load add created a node entry: %v", c.Nodes())
	}
}

func TestMessages(t *testing.T) {
	c := NewCollector()
	c.AddMessages(Normal, 4)
	c.AddMessages(Normal, 6)
	c.AddMessages(Coordination, 2)
	c.AddMessages(Abort, 0)
	if got := c.Messages(Normal); got != 10 {
		t.Errorf("Messages(Normal) = %d, want 10", got)
	}
	if got := c.Messages(Coordination); got != 2 {
		t.Errorf("Messages(Coordination) = %d, want 2", got)
	}
	if got := c.TotalMessages(); got != 12 {
		t.Errorf("TotalMessages() = %d, want 12", got)
	}
}

func TestNodesSorted(t *testing.T) {
	c := NewCollector()
	for _, n := range []string{"z", "a", "m"} {
		c.AddLoad(n, Normal, 1)
	}
	got := c.Nodes()
	want := []string{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestMaxNodeLoadTieBreaksLexically(t *testing.T) {
	c := NewCollector()
	c.AddLoad("beta", Normal, 5)
	c.AddLoad("alpha", Normal, 5)
	node, load := c.MaxNodeLoad(Normal)
	if node != "alpha" || load != 5 {
		t.Errorf("MaxNodeLoad = (%q, %d), want (alpha, 5)", node, load)
	}
}

func TestMaxNodeLoadEmpty(t *testing.T) {
	c := NewCollector()
	node, load := c.MaxNodeLoad(Normal)
	if node != "" || load != 0 {
		t.Errorf("MaxNodeLoad on empty = (%q, %d), want (\"\", 0)", node, load)
	}
	if got := c.MeanNodeLoad(Normal); got != 0 {
		t.Errorf("MeanNodeLoad on empty = %g, want 0", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := NewCollector()
	c.AddLoad("n1", Normal, 3)
	c.AddMessages(Failure, 2)
	s := c.Snapshot()
	c.AddLoad("n1", Normal, 100)
	c.AddMessages(Failure, 100)
	if got := s.NodeLoad["n1"][Normal]; got != 3 {
		t.Errorf("snapshot NodeLoad mutated: got %d, want 3", got)
	}
	if got := s.MessagesOf(Failure); got != 2 {
		t.Errorf("snapshot Messages mutated: got %d, want 2", got)
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	c.AddLoad("n1", Normal, 3)
	c.AddMessages(Normal, 3)
	c.Reset()
	if c.TotalLoad(Normal) != 0 || c.TotalMessages() != 0 || len(c.Nodes()) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestStringMentionsAllMechanisms(t *testing.T) {
	c := NewCollector()
	c.AddLoad("e", Normal, 1)
	out := c.String()
	for _, m := range Mechanisms {
		if !strings.Contains(out, m.String()) {
			t.Errorf("String() missing mechanism %q:\n%s", m, out)
		}
	}
}

func TestPerInstance(t *testing.T) {
	if got := PerInstance(60, 2); got != 30 {
		t.Errorf("PerInstance(60,2) = %g, want 30", got)
	}
	if got := PerInstance(60, 0); got != 0 {
		t.Errorf("PerInstance(60,0) = %g, want 0", got)
	}
	if got := PerInstance(60, -1); got != 0 {
		t.Errorf("PerInstance(60,-1) = %g, want 0", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			node := string(rune('a' + id))
			for i := 0; i < iters; i++ {
				c.AddLoad(node, Normal, 1)
				c.AddMessages(Coordination, 1)
			}
		}(w)
	}
	wg.Wait()
	if got := c.TotalLoad(Normal); got != workers*iters {
		t.Errorf("TotalLoad = %d, want %d", got, workers*iters)
	}
	if got := c.Messages(Coordination); got != workers*iters {
		t.Errorf("Messages = %d, want %d", got, workers*iters)
	}
}

// Property: total load always equals the sum of per-node loads, for any
// sequence of additions.
func TestPropertyTotalLoadIsSumOfNodes(t *testing.T) {
	f := func(adds []uint8) bool {
		c := NewCollector()
		var want int64
		for i, a := range adds {
			node := string(rune('a' + i%5))
			c.AddLoad(node, Failure, int64(a))
			want += int64(a)
		}
		if c.TotalLoad(Failure) != want {
			return false
		}
		var sum int64
		for _, n := range c.Nodes() {
			sum += c.NodeLoad(n, Failure)
		}
		return sum == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: messages are tracked independently per mechanism.
func TestPropertyMessagesPerMechanismIndependent(t *testing.T) {
	f := func(n1, n2 uint8) bool {
		c := NewCollector()
		c.AddMessages(Normal, int64(n1))
		c.AddMessages(Abort, int64(n2))
		return c.Messages(Normal) == int64(n1) &&
			c.Messages(Abort) == int64(n2) &&
			c.TotalMessages() == int64(n1)+int64(n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecoveryCounters(t *testing.T) {
	c := NewCollector()
	c.AddCrash()
	c.AddCrash()
	c.AddRecovery(7)
	c.AddRecovery(3)
	c.AddRetransmits(4)
	c.AddSurvived(5)
	if c.Crashes() != 2 || c.Recoveries() != 2 {
		t.Errorf("crashes=%d recoveries=%d, want 2/2", c.Crashes(), c.Recoveries())
	}
	if c.RecoveryTicks() != 10 {
		t.Errorf("recovery ticks = %d, want 10", c.RecoveryTicks())
	}
	if c.Retransmits() != 4 || c.Survived() != 5 {
		t.Errorf("retransmits=%d survived=%d, want 4/5", c.Retransmits(), c.Survived())
	}
	c.Reset()
	if c.Crashes()+c.Recoveries()+c.RecoveryTicks()+c.Retransmits()+c.Survived() != 0 {
		t.Error("Reset left recovery counters standing")
	}
}

// TestRecoveryCountersNilSafe pins the contract the fault injector relies
// on: recording into a nil collector is a no-op, not a panic.
func TestRecoveryCountersNilSafe(t *testing.T) {
	var c *Collector
	c.AddCrash()
	c.AddRecovery(1)
	c.AddRetransmits(1)
	c.AddSurvived(1)
}
