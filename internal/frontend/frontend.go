// Package frontend implements the paper's front-end database: the
// administrative interface that maps external business identifiers (order
// numbers, case IDs) to workflow instances and translates user requests into
// workflow-interface invocations — WorkflowStart when an order is submitted,
// WorkflowAbort when a customer cancels, WorkflowChangeInputs when an order
// is amended, WorkflowStatus for inquiries. In distributed control it
// interacts only with coordination agents, exactly as §4.1 prescribes.
package frontend

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"crew/internal/expr"
	"crew/internal/wfdb"
)

// System is the face of a WFMS deployment the front end drives; the
// central, parallel and distributed System types all satisfy it.
type System interface {
	Start(workflow string, inputs map[string]expr.Value) (int, error)
	Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error)
	Abort(workflow string, id int) error
	ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error
	Status(workflow string, id int) (wfdb.Status, bool)
}

// ErrUnknownRequest reports an unmapped external identifier.
var ErrUnknownRequest = errors.New("frontend: unknown request id")

// ErrDuplicateRequest reports a reused external identifier.
var ErrDuplicateRequest = errors.New("frontend: request id already exists")

type binding struct {
	workflow string
	instance int
}

// FrontEnd maps external request IDs to workflow instances.
type FrontEnd struct {
	sys System

	mu       sync.Mutex
	requests map[string]binding
}

// New builds a front end over a running deployment.
func New(sys System) *FrontEnd {
	return &FrontEnd{sys: sys, requests: make(map[string]binding)}
}

// Submit starts a workflow instance for an external request.
func (f *FrontEnd) Submit(requestID, workflow string, inputs map[string]expr.Value) error {
	f.mu.Lock()
	if _, dup := f.requests[requestID]; dup {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateRequest, requestID)
	}
	f.mu.Unlock()
	id, err := f.sys.Start(workflow, inputs)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.requests[requestID] = binding{workflow: workflow, instance: id}
	f.mu.Unlock()
	return nil
}

func (f *FrontEnd) lookup(requestID string) (binding, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.requests[requestID]
	if !ok {
		return binding{}, fmt.Errorf("%w: %q", ErrUnknownRequest, requestID)
	}
	return b, nil
}

// Cancel translates a customer cancellation into a workflow abort. Aborts of
// committed workflows are rejected by the coordination agent/engine.
func (f *FrontEnd) Cancel(requestID string) error {
	b, err := f.lookup(requestID)
	if err != nil {
		return err
	}
	return f.sys.Abort(b.workflow, b.instance)
}

// Amend translates an order amendment into a workflow input change.
func (f *FrontEnd) Amend(requestID string, inputs map[string]expr.Value) error {
	b, err := f.lookup(requestID)
	if err != nil {
		return err
	}
	return f.sys.ChangeInputs(b.workflow, b.instance, inputs)
}

// Status answers a status inquiry.
func (f *FrontEnd) Status(requestID string) (wfdb.Status, error) {
	b, err := f.lookup(requestID)
	if err != nil {
		return 0, err
	}
	st, ok := f.sys.Status(b.workflow, b.instance)
	if !ok {
		return 0, fmt.Errorf("frontend: no status for %q", requestID)
	}
	return st, nil
}

// Wait blocks until the request's workflow terminates.
func (f *FrontEnd) Wait(requestID string, timeout time.Duration) (wfdb.Status, error) {
	b, err := f.lookup(requestID)
	if err != nil {
		return 0, err
	}
	return f.sys.Wait(b.workflow, b.instance, timeout)
}

// Instance exposes the binding for diagnostics.
func (f *FrontEnd) Instance(requestID string) (workflow string, id int, err error) {
	b, err := f.lookup(requestID)
	if err != nil {
		return "", 0, err
	}
	return b.workflow, b.instance, nil
}

// Requests returns the number of mapped requests.
func (f *FrontEnd) Requests() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.requests)
}
