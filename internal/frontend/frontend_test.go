package frontend

import (
	"errors"
	"testing"
	"time"

	"crew/internal/central"
	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/wfdb"
)

func testSystem(t *testing.T) *central.System {
	t.Helper()
	reg := model.NewRegistry()
	reg.Register("p", func(ctx *model.ProgramContext) (map[string]expr.Value, error) {
		v, _ := ctx.Inputs["WF.I1"].AsNum()
		return map[string]expr.Value{"O1": expr.Num(v * 2)}, nil
	})
	reg.Register("c", model.NopProgram())
	reg.Register("gate", model.NopProgram())
	lib := model.NewLibrary()
	lib.Add(model.NewSchema("Order", "I1").
		Step("A", "p", model.WithInputs("WF.I1"), model.WithOutputs("O1"), model.WithCompensation("c")).
		Step("B", "gate").
		Seq("A", "B").
		MustBuild())
	sys, err := central.NewSystem(central.SystemConfig{
		Library:   lib,
		Programs:  reg,
		Collector: metrics.NewCollector(),
		Agents:    []string{"a1"},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestSubmitStatusWait(t *testing.T) {
	fe := New(testSystem(t))
	if err := fe.Submit("ord-1", "Order", map[string]expr.Value{"I1": expr.Num(3)}); err != nil {
		t.Fatal(err)
	}
	if fe.Requests() != 1 {
		t.Errorf("Requests = %d", fe.Requests())
	}
	st, err := fe.Wait("ord-1", 5*time.Second)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("Wait = (%v, %v)", st, err)
	}
	st, err = fe.Status("ord-1")
	if err != nil || st != wfdb.Committed {
		t.Errorf("Status = (%v, %v)", st, err)
	}
	wf, id, err := fe.Instance("ord-1")
	if err != nil || wf != "Order" || id != 1 {
		t.Errorf("Instance = (%q, %d, %v)", wf, id, err)
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	fe := New(testSystem(t))
	if err := fe.Submit("ord-1", "Order", nil); err != nil {
		t.Fatal(err)
	}
	if err := fe.Submit("ord-1", "Order", nil); !errors.Is(err, ErrDuplicateRequest) {
		t.Errorf("duplicate submit = %v", err)
	}
	if err := fe.Cancel("nope"); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown cancel = %v", err)
	}
	if err := fe.Amend("nope", nil); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown amend = %v", err)
	}
	if _, err := fe.Status("nope"); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown status = %v", err)
	}
	if _, err := fe.Wait("nope", time.Second); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown wait = %v", err)
	}
	if _, _, err := fe.Instance("nope"); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown instance = %v", err)
	}
}

func TestSubmitUnknownWorkflow(t *testing.T) {
	fe := New(testSystem(t))
	if err := fe.Submit("x", "Ghost", nil); err == nil {
		t.Error("unknown workflow should fail")
	}
	if fe.Requests() != 0 {
		t.Error("failed submit should not be recorded")
	}
}

func TestCancelAfterCommitRejected(t *testing.T) {
	fe := New(testSystem(t))
	if err := fe.Submit("ord-1", "Order", nil); err != nil {
		t.Fatal(err)
	}
	if st, err := fe.Wait("ord-1", 5*time.Second); err != nil || st != wfdb.Committed {
		t.Fatalf("Wait = (%v, %v)", st, err)
	}
	if err := fe.Cancel("ord-1"); err == nil {
		t.Error("cancel after commit should be rejected")
	}
}
