// Package store implements the small embedded database underlying the
// workflow database (WFDB) of the centralized architecture and the per-agent
// databases (AGDB) of the distributed architecture.
//
// It is a write-ahead log of table mutations with an in-memory view:
// every Put/Delete is appended to the log (checksummed and length-framed)
// before the in-memory tables are updated, so a reopened store recovers to
// exactly the state whose records were durably appended — the forward
// recovery the paper relies on for engine and agent failures. A torn tail
// record (partial write at crash) is detected by checksum and truncated.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// record is one logged mutation.
type record struct {
	Table  string `json:"t"`
	Key    string `json:"k"`
	Value  []byte `json:"v,omitempty"`
	Delete bool   `json:"d,omitempty"`
}

// Store is a table/key/value store with WAL durability. All methods are safe
// for concurrent use.
type Store struct {
	mu     sync.RWMutex
	path   string   // empty for memory-only stores
	f      *os.File // nil for memory-only stores
	tables map[string]map[string][]byte
	writes int64

	// Spilled tables keep only a fixed-size (offset, length) reference in
	// memory; the value bytes live in the append-only side file spillF.
	spill    map[string]bool
	spillF   *os.File
	spillOff int64
}

// OpenMemory returns a store without a backing file; Put/Delete apply only to
// the in-memory view. Used by experiments where durability is irrelevant to
// the measured quantities.
func OpenMemory() *Store {
	return &Store{tables: make(map[string]map[string][]byte)}
}

// Open opens (creating if needed) a file-backed store and replays its log.
func Open(path string) (*Store, error) {
	s := &Store{path: path, tables: make(map[string]map[string][]byte)}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	valid, err := s.replay(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate any torn tail so appends continue from the last valid record.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek %s: %w", path, err)
	}
	s.f = f
	return s, nil
}

// replay reads records from f until EOF or corruption, applying them to the
// in-memory view, and returns the offset of the last valid record end.
func (s *Store) replay(f *os.File) (validEnd int64, err error) {
	var off int64
	var hdr [8]byte // 4-byte length + 4-byte CRC32
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return off, nil // clean EOF or torn header: stop here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<28 {
			return off, nil // implausible length: treat as torn
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(f, buf); err != nil {
			return off, nil
		}
		if crc32.ChecksumIEEE(buf) != sum {
			return off, nil
		}
		var rec record
		if err := json.Unmarshal(buf, &rec); err != nil {
			return off, nil
		}
		s.apply(rec)
		off += int64(8 + int(n))
		s.writes++
	}
}

func (s *Store) apply(rec record) {
	tbl := s.tables[rec.Table]
	if tbl == nil {
		tbl = make(map[string][]byte)
		s.tables[rec.Table] = tbl
	}
	if rec.Delete {
		delete(tbl, rec.Key)
	} else {
		tbl[rec.Key] = rec.Value
	}
}

func (s *Store) append(rec record) error {
	if s.f == nil {
		return nil
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(buf)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(buf))
	if _, err := s.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: write header: %w", err)
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("store: write record: %w", err)
	}
	return nil
}

// ErrClosed is returned by mutations on a closed store.
var ErrClosed = errors.New("store: closed")

// spillRefLen is the in-memory footprint of a spilled value: an 8-byte file
// offset plus a 4-byte length. Within a spilled table every resident value
// is a reference, so no sentinel byte is needed to tell them apart.
const spillRefLen = 12

// Spill moves a table's resident values into an append-only side file
// (<path>.spill), leaving only 12-byte references in memory, and routes all
// future writes to that table the same way. Reads transparently fetch the
// bytes back with ReadAt. The WAL remains the sole durability source — the
// side file is rebuilt from it on the next Open+Spill — so a stale or
// missing spill file after a crash is harmless.
//
// Spill keeps resident memory flat when a table grows without bound (the
// instance archive under a sustained workload stream). It is a no-op for
// memory-only stores, which have nowhere to spill.
func (s *Store) Spill(table string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tables == nil {
		return ErrClosed
	}
	if s.f == nil || s.spill[table] {
		return nil
	}
	if s.spillF == nil {
		// Truncate: any previous side file belongs to a prior incarnation
		// whose references did not survive the restart.
		f, err := os.OpenFile(s.path+".spill", os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: spill %s: %w", table, err)
		}
		s.spillF = f
		s.spillOff = 0
	}
	for k, v := range s.tables[table] {
		ref, err := s.spillValue(v)
		if err != nil {
			return err
		}
		s.tables[table][k] = ref
	}
	if s.spill == nil {
		s.spill = make(map[string]bool)
	}
	s.spill[table] = true
	return nil
}

// spillValue appends v to the side file and returns its reference.
// Caller holds s.mu.
func (s *Store) spillValue(v []byte) ([]byte, error) {
	if _, err := s.spillF.WriteAt(v, s.spillOff); err != nil {
		return nil, fmt.Errorf("store: spill write: %w", err)
	}
	ref := make([]byte, spillRefLen)
	binary.LittleEndian.PutUint64(ref[0:8], uint64(s.spillOff))
	binary.LittleEndian.PutUint32(ref[8:12], uint32(len(v)))
	s.spillOff += int64(len(v))
	return ref, nil
}

// readSpill dereferences a spilled value. Caller holds s.mu (read or write).
func (s *Store) readSpill(ref []byte) ([]byte, error) {
	if len(ref) != spillRefLen {
		return nil, fmt.Errorf("store: corrupt spill reference (%d bytes)", len(ref))
	}
	off := int64(binary.LittleEndian.Uint64(ref[0:8]))
	n := binary.LittleEndian.Uint32(ref[8:12])
	buf := make([]byte, n)
	if _, err := s.spillF.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: spill read: %w", err)
	}
	return buf, nil
}

// Put writes value under table/key. The value is copied.
func (s *Store) Put(table, key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tables == nil {
		return ErrClosed
	}
	v := append([]byte(nil), value...)
	if err := s.append(record{Table: table, Key: key, Value: v}); err != nil {
		return err
	}
	if s.spill[table] {
		// The WAL record above carries the real bytes (durability); only the
		// resident copy is demoted to a side-file reference.
		ref, err := s.spillValue(v)
		if err != nil {
			return err
		}
		v = ref
	}
	s.apply(record{Table: table, Key: key, Value: v})
	s.writes++
	return nil
}

// PutJSON marshals v and stores it.
func (s *Store) PutJSON(table, key string, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encode %s/%s: %w", table, key, err)
	}
	return s.Put(table, key, buf)
}

// Delete removes table/key; deleting an absent key is a no-op that is still
// logged (so replay remains deterministic).
func (s *Store) Delete(table, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tables == nil {
		return ErrClosed
	}
	if err := s.append(record{Table: table, Key: key, Delete: true}); err != nil {
		return err
	}
	s.apply(record{Table: table, Key: key, Delete: true})
	s.writes++
	return nil
}

// Get returns a copy of the value at table/key.
func (s *Store) Get(table, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tbl := s.tables[table]
	if tbl == nil {
		return nil, false
	}
	v, ok := tbl[key]
	if !ok {
		return nil, false
	}
	if s.spill[table] {
		val, err := s.readSpill(v)
		if err != nil {
			return nil, false
		}
		return val, true
	}
	return append([]byte(nil), v...), true
}

// GetJSON unmarshals the value at table/key into out.
func (s *Store) GetJSON(table, key string, out any) (bool, error) {
	v, ok := s.Get(table, key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(v, out); err != nil {
		return true, fmt.Errorf("store: decode %s/%s: %w", table, key, err)
	}
	return true, nil
}

// Keys returns the sorted keys of a table.
func (s *Store) Keys(table string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	tbl := s.tables[table]
	keys := make([]string, 0, len(tbl))
	for k := range tbl {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Scan calls fn for each key/value of a table in sorted key order, stopping
// early if fn returns false.
func (s *Store) Scan(table string, fn func(key string, value []byte) bool) {
	for _, k := range s.Keys(table) {
		v, ok := s.Get(table, k)
		if !ok {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}

// Len returns the number of live keys in a table.
func (s *Store) Len(table string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tables[table])
}

// Writes returns the number of logged mutations (including replayed ones),
// a cheap proxy for persistence I/O in experiments.
func (s *Store) Writes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.writes
}

// Compact rewrites the log as a minimal snapshot of the live state. File-
// backed stores only; a no-op for memory stores.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	tmp := s.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	old := s.f
	s.f = f
	tables := make([]string, 0, len(s.tables))
	for t := range s.tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		keys := make([]string, 0, len(s.tables[t]))
		for k := range s.tables[t] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := s.tables[t][k]
			if s.spill[t] {
				// Compaction rewrites the WAL with real values; resident
				// references into the (append-only) side file stay valid.
				var err error
				if v, err = s.readSpill(v); err != nil {
					s.f = old
					f.Close()
					os.Remove(tmp)
					return err
				}
			}
			if err := s.append(record{Table: t, Key: k, Value: v}); err != nil {
				s.f = old
				f.Close()
				os.Remove(tmp)
				return err
			}
		}
	}
	if err := f.Sync(); err != nil {
		s.f = old
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		s.f = old
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: compact rename: %w", err)
	}
	old.Close()
	return nil
}

// Sync flushes the backing file.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	return s.f.Sync()
}

// Close releases the backing file. Further mutations fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables = nil
	if s.spillF != nil {
		s.spillF.Close()
		s.spillF = nil
	}
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}
