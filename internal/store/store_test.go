package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s := OpenMemory()
	if _, ok := s.Get("t", "k"); ok {
		t.Error("Get on empty store succeeded")
	}
	if err := s.Put("t", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("t", "k")
	if !ok || string(v) != "v1" {
		t.Errorf("Get = (%q, %v)", v, ok)
	}
	if err := s.Put("t", "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("t", "k"); string(v) != "v2" {
		t.Errorf("overwrite failed: %q", v)
	}
	if err := s.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("t", "k"); ok {
		t.Error("Get after Delete succeeded")
	}
	// Deleting an absent key is fine.
	if err := s.Delete("t", "absent"); err != nil {
		t.Fatal(err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := OpenMemory()
	s.Put("t", "k", []byte("abc"))
	v, _ := s.Get("t", "k")
	v[0] = 'X'
	v2, _ := s.Get("t", "k")
	if string(v2) != "abc" {
		t.Error("Get exposed internal buffer")
	}
	// Put must copy too.
	buf := []byte("mno")
	s.Put("t", "k2", buf)
	buf[0] = 'X'
	v3, _ := s.Get("t", "k2")
	if string(v3) != "mno" {
		t.Error("Put aliased caller buffer")
	}
}

func TestKeysScanLen(t *testing.T) {
	s := OpenMemory()
	for _, k := range []string{"b", "a", "c"} {
		s.Put("t", k, []byte(k))
	}
	keys := s.Keys("t")
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("Keys = %v", keys)
	}
	if s.Len("t") != 3 || s.Len("other") != 0 {
		t.Error("Len wrong")
	}
	var seen []string
	s.Scan("t", func(k string, v []byte) bool {
		seen = append(seen, k)
		return k != "b" // stop after b
	})
	if len(seen) != 2 || seen[1] != "b" {
		t.Errorf("Scan early-stop = %v", seen)
	}
	s.Scan("missing", func(string, []byte) bool {
		t.Error("Scan of missing table called fn")
		return true
	})
}

func TestJSONRoundTrip(t *testing.T) {
	s := OpenMemory()
	type rec struct {
		A int
		B string
	}
	if err := s.PutJSON("t", "k", rec{A: 7, B: "x"}); err != nil {
		t.Fatal(err)
	}
	var out rec
	ok, err := s.GetJSON("t", "k", &out)
	if err != nil || !ok || out.A != 7 || out.B != "x" {
		t.Errorf("GetJSON = (%v, %v, %+v)", ok, err, out)
	}
	ok, err = s.GetJSON("t", "missing", &out)
	if ok || err != nil {
		t.Errorf("GetJSON missing = (%v, %v)", ok, err)
	}
	s.Put("t", "bad", []byte("{not json"))
	ok, err = s.GetJSON("t", "bad", &out)
	if !ok || err == nil {
		t.Error("GetJSON should report decode error")
	}
	if err := s.PutJSON("t", "ch", make(chan int)); err == nil {
		t.Error("PutJSON of unmarshalable value should fail")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("inst", "WF1.1", []byte("state1"))
	s.Put("inst", "WF1.2", []byte("state2"))
	s.Delete("inst", "WF1.1")
	s.Put("class", "WF1", []byte("schema"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Get("inst", "WF1.1"); ok {
		t.Error("deleted key resurrected after reopen")
	}
	if v, ok := r.Get("inst", "WF1.2"); !ok || string(v) != "state2" {
		t.Errorf("lost key after reopen: (%q, %v)", v, ok)
	}
	if v, ok := r.Get("class", "WF1"); !ok || string(v) != "schema" {
		t.Error("lost class table after reopen")
	}
	// Appends after reopen persist too.
	r.Put("inst", "WF1.3", []byte("state3"))
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Get("inst", "WF1.3"); !ok {
		t.Error("append after reopen lost")
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("t", "good", []byte("v"))
	s.Close()

	// Simulate a crash mid-append: garbage tail bytes.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2, 3}) // claims 9 bytes, provides 3 garbage
	f.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer r.Close()
	if _, ok := r.Get("t", "good"); !ok {
		t.Error("valid prefix lost")
	}
	// Store remains usable and durable after truncation.
	r.Put("t", "more", []byte("x"))
	r.Close()
	r2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Get("t", "more"); !ok {
		t.Error("write after truncation lost")
	}
}

func TestCorruptChecksumStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.db")
	s, _ := Open(path)
	s.Put("t", "k1", []byte("v1"))
	s.Put("t", "k2", []byte("v2"))
	s.Close()

	// Flip one byte in the middle of the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.Get("t", "k1"); !ok {
		t.Error("first record should survive")
	}
	if _, ok := r.Get("t", "k2"); ok {
		t.Error("corrupt record should be dropped")
	}
}

func TestCompact(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 50; i++ {
		s.Put("t", "k", []byte{byte(i)})
	}
	s.Put("t", "other", []byte("keep"))
	s.Delete("t", "other")
	s.Put("t", "other", []byte("final"))
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("Compact did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	// State preserved, and still durable.
	if v, ok := s.Get("t", "k"); !ok || v[0] != 49 {
		t.Error("Compact lost live state")
	}
	s.Put("t", "post", []byte("p"))
	s.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Get("t", "other"); !ok || string(v) != "final" {
		t.Error("Compacted state wrong after reopen")
	}
	if _, ok := r.Get("t", "post"); !ok {
		t.Error("post-compaction append lost")
	}
}

func TestCompactMemoryNoop(t *testing.T) {
	s := OpenMemory()
	s.Put("t", "k", []byte("v"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := OpenMemory()
	s.Close()
	if err := s.Put("t", "k", nil); err != ErrClosed {
		t.Errorf("Put after Close = %v, want ErrClosed", err)
	}
	if err := s.Delete("t", "k"); err != ErrClosed {
		t.Errorf("Delete after Close = %v, want ErrClosed", err)
	}
}

func TestWritesCounter(t *testing.T) {
	s := OpenMemory()
	s.Put("t", "a", nil)
	s.Put("t", "b", nil)
	s.Delete("t", "a")
	if got := s.Writes(); got != 3 {
		t.Errorf("Writes = %d, want 3", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := tempStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := string(rune('a' + id))
			for i := 0; i < 200; i++ {
				if err := s.Put("t", key, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get("t", key); !ok {
					t.Error("lost own write")
					return
				}
				s.Keys("t")
			}
		}(w)
	}
	wg.Wait()
	if s.Len("t") != 4 {
		t.Errorf("Len = %d, want 4", s.Len("t"))
	}
}

// Property: a store reopened after any sequence of puts/deletes equals the
// in-memory model map.
func TestPropertyReplayMatchesModel(t *testing.T) {
	f := func(ops []uint8, vals []uint8) bool {
		dir, err := os.MkdirTemp("", "storeprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "wal.db")
		s, err := Open(path)
		if err != nil {
			return false
		}
		modelMap := make(map[string]byte)
		for i, op := range ops {
			key := string(rune('a' + op%5))
			var val byte
			if i < len(vals) {
				val = vals[i]
			}
			if op%3 == 0 {
				s.Delete("t", key)
				delete(modelMap, key)
			} else {
				s.Put("t", key, []byte{val})
				modelMap[key] = val
			}
		}
		s.Close()
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		if r.Len("t") != len(modelMap) {
			return false
		}
		for k, v := range modelMap {
			got, ok := r.Get("t", k)
			if !ok || len(got) != 1 || got[0] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSpillRoundTrip(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 20; i++ {
		s.Put("arch", "k"+string(rune('a'+i)), []byte{byte(i), byte(i + 1)})
	}
	if err := s.Spill("arch"); err != nil {
		t.Fatal(err)
	}
	// Existing values were moved to the side file but read back unchanged.
	for i := 0; i < 20; i++ {
		v, ok := s.Get("arch", "k"+string(rune('a'+i)))
		if !ok || len(v) != 2 || v[0] != byte(i) {
			t.Fatalf("spilled value %d = %v,%v", i, v, ok)
		}
	}
	// Writes after the spill are also routed through the side file.
	s.Put("arch", "late", []byte("late-value"))
	if v, ok := s.Get("arch", "late"); !ok || string(v) != "late-value" {
		t.Fatalf("post-spill Put round-trip = %q,%v", v, ok)
	}
	if _, err := os.Stat(path + ".spill"); err != nil {
		t.Fatalf("side file missing: %v", err)
	}
	// Other tables stay resident.
	s.Put("live", "k", []byte("v"))
	if v, ok := s.Get("live", "k"); !ok || string(v) != "v" {
		t.Fatal("unspilled table affected")
	}
	// Spill is idempotent.
	if err := s.Spill("arch"); err != nil {
		t.Fatal(err)
	}
}

func TestSpillSurvivesCompactAndReopen(t *testing.T) {
	s, path := tempStore(t)
	s.Put("arch", "k1", []byte("v1"))
	if err := s.Spill("arch"); err != nil {
		t.Fatal(err)
	}
	s.Put("arch", "k2", []byte("v2"))
	// Compact must write real values (not 12-byte references) to the WAL.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"k1": "v1", "k2": "v2"} {
		if v, ok := s.Get("arch", k); !ok || string(v) != want {
			t.Fatalf("after Compact %s = %q,%v", k, v, ok)
		}
	}
	s.Close()
	// The WAL is the durability source; the stale side file is rebuilt by
	// the next Spill, and values read correctly either way.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v, ok := r.Get("arch", "k1"); !ok || string(v) != "v1" {
		t.Fatalf("after reopen k1 = %q,%v", v, ok)
	}
	if err := r.Spill("arch"); err != nil {
		t.Fatal(err)
	}
	if v, ok := r.Get("arch", "k2"); !ok || string(v) != "v2" {
		t.Fatalf("after reopen+Spill k2 = %q,%v", v, ok)
	}
}

func TestSpillMemoryNoop(t *testing.T) {
	s := OpenMemory()
	s.Put("arch", "k", []byte("v"))
	if err := s.Spill("arch"); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("arch", "k"); !ok || string(v) != "v" {
		t.Fatal("memory-store Spill changed state")
	}
}
