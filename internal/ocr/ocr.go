// Package ocr implements the paper's opportunistic compensation and
// re-execution (OCR) strategy (Figure 5): when a partially rolled-back
// workflow revisits a step that already executed, the step is not blindly
// compensated and re-executed (the Saga-style overkill). Instead:
//
//   - if the previous execution is still valid in the new context, its
//     results are reused and step.done is emitted without re-running the
//     step (no compensation, no re-execution);
//   - if the step supports it, a partial compensation followed by an
//     incremental re-execution produces an effect equivalent to complete
//     compensation plus complete re-execution at a fraction of the cost;
//   - otherwise the step is completely compensated and completely
//     re-executed.
//
// Whether re-execution is needed is controlled by the step's
// compensation-and-re-execution condition, evaluated over the instance data
// table and the previous execution (names prefixed "prev." resolve to the
// previous inputs and outputs). Steps without an explicit condition use the
// opportunistic default: re-execute only if the step's inputs changed.
//
// The order in which steps are compensated honors compensation dependent
// sets: members of a set are compensated only in the reverse of their
// execution order.
package ocr

import (
	"fmt"

	"crew/internal/expr"
	"crew/internal/model"
	"crew/internal/wfdb"
)

// Decision is the OCR outcome for revisiting an executed step.
type Decision int

const (
	// Reuse means the previous execution stands: emit step.done with the
	// previous outputs; no compensation, no re-execution.
	Reuse Decision = iota
	// CompleteCR means complete compensation followed by complete
	// re-execution.
	CompleteCR
	// IncrementalCR means partial compensation followed by incremental
	// re-execution.
	IncrementalCR
	// ExecuteFresh means the step has no valid previous execution (first
	// visit, or it was already compensated): execute normally.
	ExecuteFresh
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Reuse:
		return "reuse"
	case CompleteCR:
		return "complete-compensate+reexecute"
	case IncrementalCR:
		return "partial-compensate+incremental-reexecute"
	case ExecuteFresh:
		return "execute"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// PrevPrefix is the name prefix under which a step's previous execution is
// exposed to its re-execution condition.
const PrevPrefix = "prev."

// PrevEnv builds the expression environment layer exposing a previous
// execution: prev.<full input name> for inputs and prev.<StepID>.<out> for
// outputs.
func PrevEnv(step model.StepID, rec *wfdb.StepRecord) expr.MapEnv {
	env := make(expr.MapEnv, len(rec.Inputs)+len(rec.Outputs))
	for name, v := range rec.Inputs {
		env[PrevPrefix+name] = v
	}
	for short, v := range rec.Outputs {
		env[PrevPrefix+step.Ref(short)] = v
	}
	return env
}

// InputsChanged reports whether the new inputs differ from the recorded
// previous inputs (missing-vs-present counts as a change).
func InputsChanged(prev, next map[string]expr.Value) bool {
	if len(prev) != len(next) {
		return true
	}
	for k, v := range next {
		pv, ok := prev[k]
		if !ok || !pv.Equal(v) {
			return true
		}
	}
	return false
}

// Decide implements the decision core of the OCR algorithm for one step.
// s is the step's schema (it serves the compiled re-execution condition; a
// nil schema compiles on the fly); data is the instance data environment;
// newInputs are the inputs the step would execute with now.
func Decide(s *model.Schema, st *model.Step, rec *wfdb.StepRecord, newInputs map[string]expr.Value, data expr.Env) (Decision, error) {
	if rec == nil || !rec.HasResult {
		return ExecuteFresh, nil
	}
	needReexec := false
	if st.ReexecCond != "" {
		var cond *expr.Expr
		var err error
		if s != nil {
			cond, err = s.CondExpr(st.ReexecCond)
		} else {
			cond, err = expr.Compile(st.ReexecCond)
		}
		if err != nil {
			return CompleteCR, fmt.Errorf("ocr: step %s condition: %w", st.ID, err)
		}
		env := expr.ChainEnv{PrevEnv(st.ID, rec), expr.MapEnv(newInputs), data}
		ok, err := cond.EvalBool(env)
		if err != nil {
			// An unevaluable condition falls back to the conservative
			// complete compensation and re-execution.
			return CompleteCR, fmt.Errorf("ocr: step %s condition: %w", st.ID, err)
		}
		needReexec = ok
	} else {
		needReexec = InputsChanged(rec.Inputs, newInputs)
	}
	if !needReexec {
		return Reuse, nil
	}
	if st.Incremental {
		return IncrementalCR, nil
	}
	return CompleteCR, nil
}

// PlanCompensation returns the steps to compensate, in order, before (and
// including) compensating the given step, honoring its compensation
// dependent set: executed members of the set that ran after the step are
// compensated first, in reverse execution order. A step outside any set
// compensates alone.
func PlanCompensation(s *model.Schema, ins *wfdb.Instance, step model.StepID) []model.StepID {
	set := s.CompSetOf(step)
	if set == nil {
		return []model.StepID{step}
	}
	ordered := ins.ResultMembersInOrder(set)
	pos := -1
	for i, id := range ordered {
		if id == step {
			pos = i
			break
		}
	}
	if pos < 0 {
		// The step itself is not currently executed (or not in order);
		// compensate only it.
		return []model.StepID{step}
	}
	var plan []model.StepID
	for i := len(ordered) - 1; i > pos; i-- {
		plan = append(plan, ordered[i])
	}
	return append(plan, step)
}

// Cost models the paper's performance argument: the overhead of the OCR
// strategy is maintaining previous-execution data and checking the condition
// (small), while the savings scale with the step's execution and
// compensation cost. CostUnits returns the load units an OCR decision incurs
// given the step's execution cost and compensation cost (in load units).
func CostUnits(d Decision, execCost, compCost int64) int64 {
	const checkOverhead = 1 // condition check + bookkeeping
	switch d {
	case Reuse:
		return checkOverhead
	case IncrementalCR:
		// Partial compensation and incremental re-execution each cost a
		// fraction of their complete counterparts; the paper does not fix
		// the fraction, we use half, configurable at the call sites that
		// need other ratios.
		return checkOverhead + compCost/2 + execCost/2
	case CompleteCR:
		return checkOverhead + compCost + execCost
	default: // ExecuteFresh
		return execCost
	}
}
