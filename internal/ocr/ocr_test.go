package ocr

import (
	"strings"
	"testing"
	"testing/quick"

	"crew/internal/expr"
	"crew/internal/model"
	"crew/internal/wfdb"
)

func step(opts ...model.StepOption) *model.Step {
	st := &model.Step{ID: "S2", Program: "p", Compensation: "c"}
	for _, o := range opts {
		o(st)
	}
	return st
}

func doneRec(inputs, outputs map[string]expr.Value) *wfdb.StepRecord {
	return &wfdb.StepRecord{Status: wfdb.StepDone, Inputs: inputs, Outputs: outputs, Attempts: 1, HasResult: true}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Reuse:         "reuse",
		CompleteCR:    "complete-compensate+reexecute",
		IncrementalCR: "partial-compensate+incremental-reexecute",
		ExecuteFresh:  "execute",
		Decision(9):   "Decision(9)",
	} {
		if d.String() != want {
			t.Errorf("Decision(%d) = %q, want %q", int(d), d, want)
		}
	}
}

func TestDecideFreshWhenNoRecord(t *testing.T) {
	d, err := Decide(nil, step(), nil, nil, nil)
	if err != nil || d != ExecuteFresh {
		t.Errorf("Decide(nil rec) = (%v, %v)", d, err)
	}
	// Compensated or failed records also mean fresh execution.
	for _, status := range []wfdb.StepStatus{wfdb.StepCompensated, wfdb.StepFailed, wfdb.StepPending} {
		rec := &wfdb.StepRecord{Status: status}
		d, err := Decide(nil, step(), rec, nil, nil)
		if err != nil || d != ExecuteFresh {
			t.Errorf("Decide(status=%v) = (%v, %v)", status, d, err)
		}
	}
}

func TestDecideDefaultReusesWhenInputsUnchanged(t *testing.T) {
	in := map[string]expr.Value{"WF.I1": expr.Num(5)}
	rec := doneRec(in, map[string]expr.Value{"O1": expr.Num(9)})
	d, err := Decide(nil, step(), rec, map[string]expr.Value{"WF.I1": expr.Num(5)}, nil)
	if err != nil || d != Reuse {
		t.Errorf("unchanged inputs = (%v, %v), want Reuse", d, err)
	}
}

func TestDecideDefaultReexecutesWhenInputsChanged(t *testing.T) {
	rec := doneRec(map[string]expr.Value{"WF.I1": expr.Num(5)}, nil)
	d, err := Decide(nil, step(), rec, map[string]expr.Value{"WF.I1": expr.Num(6)}, nil)
	if err != nil || d != CompleteCR {
		t.Errorf("changed inputs = (%v, %v), want CompleteCR", d, err)
	}
}

func TestDecideIncrementalWhenSupported(t *testing.T) {
	rec := doneRec(map[string]expr.Value{"WF.I1": expr.Num(5)}, nil)
	st := step(model.WithIncremental())
	d, err := Decide(nil, st, rec, map[string]expr.Value{"WF.I1": expr.Num(6)}, nil)
	if err != nil || d != IncrementalCR {
		t.Errorf("incremental step = (%v, %v), want IncrementalCR", d, err)
	}
}

func TestDecideExplicitCondition(t *testing.T) {
	// Re-execute only when the new quantity exceeds the previously reserved
	// quantity — the classic "previous results sufficient" case.
	st := step(model.WithReexecCond("WF.I1 > prev.WF.I1"))
	rec := doneRec(map[string]expr.Value{"WF.I1": expr.Num(10)}, map[string]expr.Value{"O1": expr.Num(1)})

	d, err := Decide(nil, st, rec, map[string]expr.Value{"WF.I1": expr.Num(7)}, expr.MapEnv{})
	if err != nil || d != Reuse {
		t.Errorf("smaller quantity = (%v, %v), want Reuse", d, err)
	}
	d, err = Decide(nil, st, rec, map[string]expr.Value{"WF.I1": expr.Num(12)}, expr.MapEnv{})
	if err != nil || d != CompleteCR {
		t.Errorf("larger quantity = (%v, %v), want CompleteCR", d, err)
	}
}

func TestDecideConditionSeesPrevOutputs(t *testing.T) {
	st := step(model.WithReexecCond("prev.S2.O1 < WF.I1"))
	rec := doneRec(nil, map[string]expr.Value{"O1": expr.Num(3)})
	data := expr.MapEnv{"WF.I1": expr.Num(5)}
	d, err := Decide(nil, st, rec, nil, data)
	if err != nil || d != CompleteCR {
		t.Errorf("prev output condition = (%v, %v), want CompleteCR", d, err)
	}
	data["WF.I1"] = expr.Num(2)
	d, err = Decide(nil, st, rec, nil, data)
	if err != nil || d != Reuse {
		t.Errorf("prev output condition = (%v, %v), want Reuse", d, err)
	}
}

func TestDecideUnevaluableConditionFallsBackConservatively(t *testing.T) {
	st := step(model.WithReexecCond(`"s" < 1`))
	rec := doneRec(nil, nil)
	d, err := Decide(nil, st, rec, nil, expr.MapEnv{})
	if err == nil {
		t.Error("expected error for unevaluable condition")
	}
	if d != CompleteCR {
		t.Errorf("fallback = %v, want CompleteCR", d)
	}
	st2 := step()
	st2.ReexecCond = "1 +"
	d, err = Decide(nil, st2, rec, nil, expr.MapEnv{})
	if err == nil || d != CompleteCR {
		t.Errorf("uncompilable condition = (%v, %v)", d, err)
	}
}

func TestInputsChanged(t *testing.T) {
	a := map[string]expr.Value{"x": expr.Num(1)}
	if InputsChanged(a, map[string]expr.Value{"x": expr.Num(1)}) {
		t.Error("identical inputs reported changed")
	}
	if !InputsChanged(a, map[string]expr.Value{"x": expr.Num(2)}) {
		t.Error("different value not reported")
	}
	if !InputsChanged(a, map[string]expr.Value{"y": expr.Num(1)}) {
		t.Error("different key not reported")
	}
	if !InputsChanged(a, nil) {
		t.Error("missing inputs not reported")
	}
	if InputsChanged(nil, nil) {
		t.Error("both nil reported changed")
	}
}

func TestPrevEnv(t *testing.T) {
	rec := doneRec(
		map[string]expr.Value{"WF.I1": expr.Num(10), "S1.O1": expr.Str("part")},
		map[string]expr.Value{"O1": expr.Num(3)},
	)
	env := PrevEnv("S2", rec)
	if v, ok := env.Lookup("prev.WF.I1"); !ok || !v.Equal(expr.Num(10)) {
		t.Error("prev input missing")
	}
	if v, ok := env.Lookup("prev.S1.O1"); !ok || !v.Equal(expr.Str("part")) {
		t.Error("prev upstream input missing")
	}
	if v, ok := env.Lookup("prev.S2.O1"); !ok || !v.Equal(expr.Num(3)) {
		t.Error("prev output missing")
	}
}

func compSchema(t *testing.T) *model.Schema {
	t.Helper()
	return model.NewSchema("CS").
		Step("A", "p", model.WithCompensation("c")).
		Step("B", "p", model.WithCompensation("c")).
		Step("C", "p", model.WithCompensation("c")).
		Step("D", "p", model.WithCompensation("c")).
		Seq("A", "B", "C", "D").
		CompSet("A", "B", "C").
		MustBuild()
}

func TestPlanCompensationReverseOrder(t *testing.T) {
	s := compSchema(t)
	ins := wfdb.NewInstance("CS", 1, nil)
	for _, id := range []model.StepID{"A", "B", "C", "D"} {
		ins.RecordDone(id, nil)
	}
	plan := PlanCompensation(s, ins, "A")
	want := []model.StepID{"C", "B", "A"}
	if len(plan) != len(want) {
		t.Fatalf("plan = %v, want %v", plan, want)
	}
	for i := range want {
		if plan[i] != want[i] {
			t.Fatalf("plan = %v, want %v", plan, want)
		}
	}
}

func TestPlanCompensationMidSet(t *testing.T) {
	s := compSchema(t)
	ins := wfdb.NewInstance("CS", 1, nil)
	for _, id := range []model.StepID{"A", "B", "C"} {
		ins.RecordDone(id, nil)
	}
	plan := PlanCompensation(s, ins, "B")
	if len(plan) != 2 || plan[0] != "C" || plan[1] != "B" {
		t.Errorf("plan = %v, want [C B]", plan)
	}
}

func TestPlanCompensationOutsideSet(t *testing.T) {
	s := compSchema(t)
	ins := wfdb.NewInstance("CS", 1, nil)
	ins.RecordDone("D", nil)
	plan := PlanCompensation(s, ins, "D")
	if len(plan) != 1 || plan[0] != "D" {
		t.Errorf("plan = %v, want [D]", plan)
	}
}

func TestPlanCompensationSkipsCompensatedMembers(t *testing.T) {
	s := compSchema(t)
	ins := wfdb.NewInstance("CS", 1, nil)
	for _, id := range []model.StepID{"A", "B", "C"} {
		ins.RecordDone(id, nil)
	}
	ins.RecordCompensated("C")
	plan := PlanCompensation(s, ins, "A")
	if len(plan) != 2 || plan[0] != "B" || plan[1] != "A" {
		t.Errorf("plan = %v, want [B A]", plan)
	}
}

func TestPlanCompensationStepNotExecuted(t *testing.T) {
	s := compSchema(t)
	ins := wfdb.NewInstance("CS", 1, nil)
	ins.RecordDone("B", nil)
	// A never executed: compensating A alone (no set work).
	plan := PlanCompensation(s, ins, "A")
	if len(plan) != 1 || plan[0] != "A" {
		t.Errorf("plan = %v, want [A]", plan)
	}
}

func TestCostUnits(t *testing.T) {
	if CostUnits(Reuse, 100, 50) != 1 {
		t.Error("Reuse should cost only the check")
	}
	if CostUnits(CompleteCR, 100, 50) != 151 {
		t.Errorf("CompleteCR = %d, want 151", CostUnits(CompleteCR, 100, 50))
	}
	if CostUnits(IncrementalCR, 100, 50) != 76 {
		t.Errorf("IncrementalCR = %d, want 76", CostUnits(IncrementalCR, 100, 50))
	}
	if CostUnits(ExecuteFresh, 100, 50) != 100 {
		t.Error("ExecuteFresh should cost execCost")
	}
}

// Property: OCR never costs more than the Saga-style complete strategy, and
// reuse is never more expensive than any other decision.
func TestPropertyOCRNeverWorseThanSaga(t *testing.T) {
	f := func(execRaw, compRaw uint16, d8 uint8) bool {
		execCost, compCost := int64(execRaw)+1, int64(compRaw)
		d := Decision(int(d8) % 3) // Reuse, CompleteCR, IncrementalCR
		saga := CostUnits(CompleteCR, execCost, compCost)
		return CostUnits(d, execCost, compCost) <= saga &&
			CostUnits(Reuse, execCost, compCost) <= CostUnits(d, execCost, compCost)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the compensation plan is always a suffix-reversal of the set's
// execution order ending at the requested step, and contains no duplicates.
func TestPropertyPlanIsReverseSuffix(t *testing.T) {
	s := compSchema(t)
	f := func(perm uint8, target uint8) bool {
		ins := wfdb.NewInstance("CS", 1, nil)
		orderings := [][]model.StepID{
			{"A", "B", "C"}, {"A", "C", "B"}, {"B", "A", "C"},
			{"B", "C", "A"}, {"C", "A", "B"}, {"C", "B", "A"},
		}
		order := orderings[int(perm)%len(orderings)]
		for _, id := range order {
			ins.RecordDone(id, nil)
		}
		tgt := order[int(target)%3]
		plan := PlanCompensation(s, ins, tgt)
		if plan[len(plan)-1] != tgt {
			return false
		}
		// The plan must be the reverse of the execution order from tgt on.
		idx := -1
		for i, id := range order {
			if id == tgt {
				idx = i
			}
		}
		suffix := order[idx:]
		if len(plan) != len(suffix) {
			return false
		}
		for i := range plan {
			if plan[i] != suffix[len(suffix)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecideErrorMessagesNameTheStep(t *testing.T) {
	st := step(model.WithReexecCond("1 +"))
	st.ReexecCond = "1 +"
	_, err := Decide(nil, st, doneRec(nil, nil), nil, nil)
	if err == nil || !strings.Contains(err.Error(), "S2") {
		t.Errorf("error should name the step: %v", err)
	}
}
