// Package parallel implements the parallel workflow control architecture
// (paper Figure 6(b) and §6): several centralized engines work side by side
// to share the workflow management load, each instance being controlled by
// exactly one engine. Normal execution behaves like centralized control at
// every engine (the per-instance message count is unchanged), but
// coordinated execution now spans engines: the coordination state for the
// library's specs lives at a home engine, and the other engines reach it
// with physical messages — which is why, unlike Table 4's zero, Table 5
// reports coordination messages that grow with the number of engines.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"crew/internal/central"
	"crew/internal/cerrors"
	"crew/internal/coord"
	"crew/internal/expr"
	"crew/internal/itable"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/transport"
	"crew/internal/wfdb"
)

// Coordination protocol payloads (engine <-> home engine).

type coordCheck struct {
	Ref         model.StepRef
	Inst        coord.InstanceRef
	ReplyEngine string
}

type coordResolve struct {
	Inst       coord.InstanceRef
	Step       model.StepID
	WaitEvents []string
}

type coordDone struct {
	Ref  model.StepRef
	Inst coord.InstanceRef
}

type coordFailed struct {
	Ref  model.StepRef
	Inst coord.InstanceRef
}

type coordRollback struct {
	Workflow    string
	Invalidated []model.StepID
}

type coordForget struct {
	Inst coord.InstanceRef
}

type coordInject struct {
	Target coord.InstanceRef
	Event  string
}

type coordOrder struct {
	Order coord.RollbackOrder
}

func init() {
	// Register the coordination payloads so wire backends can carry them.
	transport.RegisterPayload(
		coordCheck{}, coordResolve{}, coordDone{}, coordFailed{},
		coordRollback{}, coordForget{}, coordInject{}, coordOrder{},
	)
}

// Message kind labels.
const (
	kindCoordCheck   = "CoordCheck"
	kindCoordResolve = "CoordResolve"
	kindCoordDone    = "CoordDone"
	kindCoordFailed  = "CoordFailed"
	kindCoordRollbk  = "CoordRollback"
	kindCoordForget  = "CoordForget"
	kindCoordInject  = "CoordInject"
	kindCoordOrder   = "CoordOrder"
)

// SystemConfig parameterizes a parallel deployment.
type SystemConfig struct {
	Library   *model.Library
	Programs  *model.Registry
	Collector *metrics.Collector
	// Engines is the paper's e; minimum 1.
	Engines int
	// Agents lists the shared application agents.
	Agents []string
	// DBs optionally gives each engine a database (len must equal Engines).
	DBs        []*wfdb.DB
	DisableOCR bool
	// Wire selects the transport backend (nil = in-process channels).
	Wire transport.Wire
	Logf func(format string, args ...any)
}

// System is a running parallel WFMS deployment.
type System struct {
	engines []*central.Engine
	net     *transport.Network
	agents  []*central.Agent
	col     *metrics.Collector
	home    *homeCoordinator
	// handles caches per-engine senders for the coordination protocol. Built
	// once at construction; read-only afterwards, so engine goroutines use it
	// without locking.
	handles map[string]*transport.Handle

	// owner and nextID are fixed-shard tables (hash on workflow+id), so
	// concurrent Start/Wait/routing traffic for different instances does not
	// contend on one system mutex. Owner entries are dropped when the owning
	// engine retires the instance (OnRetired), keeping the table flat.
	owner  itable.Map[int] // instance ref -> engine index
	nextID itable.Map[int] // {workflow, 0} -> last assigned ID
	rr     atomic.Int64

	// term is the terminal-status registry shared by every engine; archive
	// is the shared retirement archive of DB-less deployments, so any engine
	// can answer Snapshot for a retired instance.
	term    *itable.Terminal
	archive *wfdb.DB

	library *model.Library
	closed  atomic.Bool
}

// NewSystem builds and starts a parallel deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Library == nil || cfg.Programs == nil {
		return nil, errors.New("parallel: system needs a library and programs")
	}
	if err := cfg.Library.Validate(); err != nil {
		return nil, err
	}
	if cfg.Engines < 1 {
		cfg.Engines = 1
	}
	if cfg.Collector == nil {
		cfg.Collector = metrics.NewCollector()
	}
	if cfg.DBs != nil && len(cfg.DBs) != cfg.Engines {
		return nil, errors.New("parallel: DBs length must equal Engines")
	}
	agents := cfg.Agents
	if len(agents) == 0 {
		agents = cfg.Library.SortedAgents()
	}
	if len(agents) == 0 {
		agents = []string{"agent1", "agent2"}
	}

	net := transport.NewNetwork(transport.NetworkConfig{Collector: cfg.Collector, Wire: cfg.Wire})
	sys := &System{
		net:     net,
		col:     cfg.Collector,
		library: cfg.Library,
		term:    new(itable.Terminal),
		archive: wfdb.NewMemory(),
	}

	for i := 0; i < cfg.Engines; i++ {
		name := fmt.Sprintf("engine%d", i)
		var db *wfdb.DB
		if cfg.DBs != nil {
			db = cfg.DBs[i]
		}
		idx := i
		eng, err := central.NewEngine(central.Config{
			Name:       name,
			Library:    cfg.Library,
			Agents:     agents,
			Programs:   cfg.Programs,
			Collector:  cfg.Collector,
			DB:         db,
			Archive:    sys.archive,
			Terminal:   sys.term,
			DisableOCR: cfg.DisableOCR,
			Logf:       cfg.Logf,
			OnRetired: func(workflow string, id int) {
				sys.owner.Delete(itable.Ref{Workflow: workflow, ID: id})
			},
			OnUnhandled: func(m transport.Message) {
				sys.onCoordMessage(idx, m)
			},
		}, net)
		if err != nil {
			sys.Close()
			return nil, err
		}
		sys.engines = append(sys.engines, eng)
	}

	sys.home = &homeCoordinator{
		sys:     sys,
		tracker: coord.NewTracker(cfg.Library),
		idx:     0,
		rec:     cfg.Collector.Node(sys.engines[0].Name()),
	}
	for i, eng := range sys.engines {
		eng.SetCoordinator(&remoteCoordinator{sys: sys, idx: i})
	}
	sys.handles = make(map[string]*transport.Handle, len(sys.engines))
	for _, eng := range sys.engines {
		h, err := net.Handle(eng.Name())
		if err != nil {
			sys.Close()
			return nil, err
		}
		sys.handles[eng.Name()] = h
	}

	for _, name := range agents {
		ag, err := central.NewAgent(name, net, cfg.Programs, cfg.Collector)
		if err != nil {
			sys.Close()
			return nil, fmt.Errorf("parallel: agent %s: %w", name, err)
		}
		sys.agents = append(sys.agents, ag)
	}
	return sys, nil
}

// Engines returns the number of engines.
func (s *System) Engines() int { return len(s.engines) }

// Collector returns the metrics collector.
func (s *System) Collector() *metrics.Collector { return s.col }

// Network exposes the transport.
func (s *System) Network() *transport.Network { return s.net }

// ownerOf returns the engine index owning an instance (defaults to 0).
func (s *System) ownerOf(inst coord.InstanceRef) int {
	idx, _ := s.owner.Get(itable.Ref{Workflow: inst.Workflow, ID: inst.ID})
	return idx
}

// engineFor returns the engine owning an instance.
func (s *System) engineFor(workflow string, id int) *central.Engine {
	idx, _ := s.owner.Get(itable.Ref{Workflow: workflow, ID: id})
	return s.engines[idx]
}

// admit performs the shared pre-flight checks of context-aware calls.
func (s *System) admit(ctx context.Context, workflow string) error {
	if s.closed.Load() {
		return fmt.Errorf("parallel: %w", cerrors.ErrClosed)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workflow != "" && s.library.Schema(workflow) == nil {
		return fmt.Errorf("parallel: %w: %q", cerrors.ErrUnknownWorkflow, workflow)
	}
	return nil
}

// Start launches an instance on the next engine (round robin) and returns
// its ID.
func (s *System) Start(workflow string, inputs map[string]expr.Value) (int, error) {
	return s.StartCtx(context.Background(), workflow, inputs)
}

// StartCtx launches an instance on the next engine (round robin). The context
// gates only the admission of the request; a started instance keeps running
// after ctx is cancelled.
func (s *System) StartCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, error) {
	if err := s.admit(ctx, workflow); err != nil {
		return 0, err
	}
	id := s.nextID.Update(itable.Ref{Workflow: workflow}, func(v int, _ bool) int { return v + 1 })
	idx := int(s.rr.Add(1)-1) % len(s.engines)
	s.owner.Put(itable.Ref{Workflow: workflow, ID: id}, idx)
	if err := s.engines[idx].StartWithID(workflow, id, inputs); err != nil {
		return 0, err
	}
	return id, nil
}

// StartSeq launches an instance under an externally assigned ID and global
// sequence number. The owning engine is seq modulo the engine count — the
// same placement the round-robin Start produces when instances are started
// one at a time in sequence order — so concurrent drivers reproduce the
// sequential placement exactly regardless of call interleaving. A StartSeq
// racing Close fails with cerrors.ErrClosed instead of panicking on the
// closed transport.
func (s *System) StartSeq(workflow string, id, seq int, inputs map[string]expr.Value) error {
	if s.closed.Load() {
		return fmt.Errorf("parallel: %w", cerrors.ErrClosed)
	}
	idx := seq % len(s.engines)
	s.nextID.Update(itable.Ref{Workflow: workflow}, func(v int, _ bool) int {
		if id > v {
			return id
		}
		return v
	})
	for {
		cur := s.rr.Load()
		if int64(seq+1) <= cur || s.rr.CompareAndSwap(cur, int64(seq+1)) {
			break
		}
	}
	s.owner.Put(itable.Ref{Workflow: workflow, ID: id}, idx)
	return s.engines[idx].StartWithID(workflow, id, inputs)
}

// Quiesce blocks until no message is queued, undelivered or still being
// processed anywhere in the deployment.
func (s *System) Quiesce(ctx context.Context) error { return s.net.Quiesce(ctx) }

// Run starts an instance and waits for its terminal status. It wraps RunCtx
// with a deadline context.
func (s *System) Run(workflow string, inputs map[string]expr.Value, timeout time.Duration) (int, wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.RunCtx(ctx, workflow, inputs)
}

// RunCtx starts an instance and waits for its terminal status under ctx.
func (s *System) RunCtx(ctx context.Context, workflow string, inputs map[string]expr.Value) (int, wfdb.Status, error) {
	id, err := s.StartCtx(ctx, workflow, inputs)
	if err != nil {
		return 0, 0, err
	}
	st, err := s.WaitCtx(ctx, workflow, id)
	return id, st, err
}

// Wait blocks until the instance terminates. It wraps WaitCtx with a deadline
// context; the deadline surfaces as cerrors.ErrTimeout.
func (s *System) Wait(workflow string, id int, timeout time.Duration) (wfdb.Status, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return s.WaitCtx(ctx, workflow, id)
}

// WaitCtx blocks until the instance terminates or ctx ends. Completion is
// push-based: the call subscribes to the shared terminal registry and is
// woken by the owning engine publishing the terminal status — no routing
// through the owner map (which drops retired instances) and no polling.
// A deadline expiry is reported as cerrors.ErrTimeout (errors.Is-matchable);
// a plain cancellation as ctx.Err().
func (s *System) WaitCtx(ctx context.Context, workflow string, id int) (wfdb.Status, error) {
	if err := s.admit(ctx, ""); err != nil {
		return 0, err
	}
	st, done, w, gen := s.term.Subscribe(workflow, id)
	if done {
		return st, nil
	}
	// An instance that finished under a previous engine incarnation exists
	// only as a database summary; the registry will never fire for it.
	if cur, ok := s.engineFor(workflow, id).Status(workflow, id); ok && cur != wfdb.Running {
		s.term.Unsubscribe(workflow, id, w, gen)
		return cur, nil
	}
	select {
	case <-w.Done():
		return w.Result(), nil
	case <-ctx.Done():
		s.term.Unsubscribe(workflow, id, w, gen)
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return 0, fmt.Errorf("parallel: %w: %s.%d", cerrors.ErrTimeout, workflow, id)
		}
		return 0, ctx.Err()
	}
}

// Abort requests a user abort.
func (s *System) Abort(workflow string, id int) error {
	return s.engineFor(workflow, id).Abort(workflow, id)
}

// ChangeInputs applies user-initiated input changes.
func (s *System) ChangeInputs(workflow string, id int, inputs map[string]expr.Value) error {
	return s.engineFor(workflow, id).ChangeInputs(workflow, id, inputs)
}

// Status reports an instance's status.
func (s *System) Status(workflow string, id int) (wfdb.Status, bool) {
	return s.engineFor(workflow, id).Status(workflow, id)
}

// Snapshot returns a deep copy of the instance state. Retired instances
// answer from the shared archive via any engine; DB-backed deployments fall
// back to scanning each engine's own archive.
func (s *System) Snapshot(workflow string, id int) (*wfdb.Instance, bool) {
	if ins, ok := s.engineFor(workflow, id).Snapshot(workflow, id); ok {
		return ins, true
	}
	for _, e := range s.engines {
		if ins, ok := e.Snapshot(workflow, id); ok {
			return ins, true
		}
	}
	return nil, false
}

// Close shuts the deployment down. Later context-aware calls fail with
// cerrors.ErrClosed.
func (s *System) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.net.Close()
	for _, e := range s.engines {
		e.Stop()
	}
	for _, a := range s.agents {
		a.Stop()
	}
}

// HaltNode simulates a process crash of a named node. A crashed engine
// discards its volatile state (rebuilt from its WFDB by RestartNode); agents
// are stateless, so for them — and unknown names — only the transport queue
// is parked. The home coordination tracker (engine 0) is treated as part of
// the persistent coordination database, matching the paper's assumption that
// scheduler state survives in stable storage.
func (s *System) HaltNode(name string) {
	s.net.Crash(name)
	for _, e := range s.engines {
		if e.Name() == name {
			e.Halt()
		}
	}
}

// RestartNode recovers a node halted by HaltNode: a crashed engine rebuilds
// from its WFDB, then the transport delivers the messages parked while the
// node was down.
func (s *System) RestartNode(name string) {
	for _, e := range s.engines {
		if e.Name() == name {
			e.Restart()
		}
	}
	s.net.Recover(name)
}

func (s *System) send(from, to string, kind string, payload any) {
	m := transport.Message{
		From:      from,
		To:        to,
		Mechanism: metrics.Coordination,
		Kind:      kind,
		Payload:   payload,
	}
	if h := s.handles[to]; h != nil {
		_ = h.Send(m)
		return
	}
	_ = s.net.Send(m)
}

// onCoordMessage dispatches coordination protocol messages. It runs on the
// receiving engine's goroutine.
func (s *System) onCoordMessage(engineIdx int, m transport.Message) {
	eng := s.engines[engineIdx]
	switch p := m.Payload.(type) {
	case coordCheck:
		s.home.check(p.Ref, p.Inst, p.ReplyEngine)
	case coordDone:
		s.home.stepDone(p.Ref, p.Inst)
	case coordFailed:
		s.home.stepFailed(p.Ref, p.Inst)
	case coordRollback:
		s.home.rollback(p.Workflow, p.Invalidated)
	case coordForget:
		s.home.forget(p.Inst)
	case coordResolve:
		eng.ResolveCoord(p.Inst.Workflow, p.Inst.ID, p.Step, p.WaitEvents)
	case coordInject:
		eng.InjectEvent(p.Target.Workflow, p.Target.ID, p.Event)
	case coordOrder:
		eng.ApplyRollbackOrder(p.Order)
	}
}

// ---------------------------------------------------------------------------
// Home coordinator: owns the tracker; runs on engine 0's goroutine.

type homeCoordinator struct {
	sys     *System
	tracker *coord.Tracker
	idx     int // home engine index
	rec     metrics.NodeRecorder
}

func (h *homeCoordinator) homeEngine() *central.Engine { return h.sys.engines[h.idx] }

func (h *homeCoordinator) load(units int64) {
	h.rec.Add(metrics.Coordination, units)
}

// deliver routes an injection to the engine owning the target instance.
func (h *homeCoordinator) deliver(inj coord.Injection) {
	ownerIdx := h.sys.ownerOf(inj.Target)
	if ownerIdx == h.idx {
		h.homeEngine().InjectEvent(inj.Target.Workflow, inj.Target.ID, inj.Event)
		return
	}
	h.sys.send(h.homeEngine().Name(), h.sys.engines[ownerIdx].Name(), kindCoordInject,
		coordInject{Target: inj.Target, Event: inj.Event})
}

func (h *homeCoordinator) check(ref model.StepRef, inst coord.InstanceRef, replyEngine string) {
	h.load(1)
	waits := h.tracker.OrderWait(ref, inst)
	grants, mutexWaits := h.tracker.MutexAcquire(ref, inst)
	waits = append(waits, mutexWaits...)
	for _, g := range grants {
		h.deliver(g)
	}
	if replyEngine == h.homeEngine().Name() {
		h.homeEngine().ResolveCoord(inst.Workflow, inst.ID, ref.Step, waits)
		return
	}
	h.sys.send(h.homeEngine().Name(), replyEngine, kindCoordResolve,
		coordResolve{Inst: inst, Step: ref.Step, WaitEvents: waits})
}

func (h *homeCoordinator) stepDone(ref model.StepRef, inst coord.InstanceRef) {
	h.load(1)
	for _, inj := range h.tracker.OrderStepDone(ref, inst) {
		h.deliver(inj)
	}
	for _, inj := range h.tracker.MutexRelease(ref, inst) {
		h.deliver(inj)
	}
}

func (h *homeCoordinator) stepFailed(ref model.StepRef, inst coord.InstanceRef) {
	h.load(1)
	for _, inj := range h.tracker.MutexRelease(ref, inst) {
		h.deliver(inj)
	}
}

func (h *homeCoordinator) rollback(workflow string, invalidated []model.StepID) {
	h.load(1)
	orders := h.tracker.RollbackTriggered(workflow, invalidated)
	if len(orders) == 0 {
		return
	}
	// Every engine may own instances of the dependent class: broadcast.
	for _, ord := range orders {
		for i, eng := range h.sys.engines {
			if i == h.idx {
				eng.ApplyRollbackOrder(ord)
				continue
			}
			h.sys.send(h.homeEngine().Name(), eng.Name(), kindCoordOrder, coordOrder{Order: ord})
		}
	}
}

func (h *homeCoordinator) forget(inst coord.InstanceRef) {
	h.load(1)
	for _, inj := range h.tracker.OrderForget(inst) {
		h.deliver(inj)
	}
	for _, inj := range h.tracker.MutexForget(inst) {
		h.deliver(inj)
	}
}

// ---------------------------------------------------------------------------
// Remote coordinator: what each engine talks to. On the home engine the
// calls go straight to the home coordinator (same goroutine); elsewhere they
// become physical messages.

type remoteCoordinator struct {
	sys *System
	idx int
}

var _ central.Coordinator = (*remoteCoordinator)(nil)

func (r *remoteCoordinator) local() bool { return r.idx == r.sys.home.idx }

func (r *remoteCoordinator) name() string { return r.sys.engines[r.idx].Name() }

func (r *remoteCoordinator) homeName() string { return r.sys.engines[r.sys.home.idx].Name() }

// Check implements central.Coordinator.
func (r *remoteCoordinator) Check(ref model.StepRef, inst coord.InstanceRef) {
	if r.local() {
		r.sys.home.check(ref, inst, r.name())
		return
	}
	r.sys.send(r.name(), r.homeName(), kindCoordCheck,
		coordCheck{Ref: ref, Inst: inst, ReplyEngine: r.name()})
}

// StepDone implements central.Coordinator.
func (r *remoteCoordinator) StepDone(ref model.StepRef, inst coord.InstanceRef) {
	if r.local() {
		r.sys.home.stepDone(ref, inst)
		return
	}
	r.sys.send(r.name(), r.homeName(), kindCoordDone, coordDone{Ref: ref, Inst: inst})
}

// StepFailed implements central.Coordinator.
func (r *remoteCoordinator) StepFailed(ref model.StepRef, inst coord.InstanceRef) {
	if r.local() {
		r.sys.home.stepFailed(ref, inst)
		return
	}
	r.sys.send(r.name(), r.homeName(), kindCoordFailed, coordFailed{Ref: ref, Inst: inst})
}

// Rollback implements central.Coordinator.
func (r *remoteCoordinator) Rollback(workflow string, invalidated []model.StepID) {
	if r.local() {
		r.sys.home.rollback(workflow, invalidated)
		return
	}
	r.sys.send(r.name(), r.homeName(), kindCoordRollbk,
		coordRollback{Workflow: workflow, Invalidated: invalidated})
}

// Forget implements central.Coordinator.
func (r *remoteCoordinator) Forget(inst coord.InstanceRef) {
	if r.local() {
		r.sys.home.forget(inst)
		return
	}
	r.sys.send(r.name(), r.homeName(), kindCoordForget, coordForget{Inst: inst})
}
