package parallel

import (
	"sync"
	"testing"
	"time"

	"crew/internal/expr"
	"crew/internal/metrics"
	"crew/internal/model"
	"crew/internal/wfdb"
)

const waitTimeout = 5 * time.Second

type recorder struct {
	mu     sync.Mutex
	events []string
}

func (r *recorder) add(s string) {
	r.mu.Lock()
	r.events = append(r.events, s)
	r.mu.Unlock()
}

func (r *recorder) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func (r *recorder) count(s string) int {
	n := 0
	for _, e := range r.list() {
		if e == s {
			n++
		}
	}
	return n
}

func (r *recorder) index(s string) int {
	for i, e := range r.list() {
		if e == s {
			return i
		}
	}
	return -1
}

func tracked(rec *recorder, name string) model.Program {
	return func(*model.ProgramContext) (map[string]expr.Value, error) {
		rec.add(name)
		return nil, nil
	}
}

func newSystem(t *testing.T, engines int, lib *model.Library, reg *model.Registry) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		Library:   lib,
		Programs:  reg,
		Collector: metrics.NewCollector(),
		Engines:   engines,
		Agents:    []string{"a1", "a2"},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func linLib(reg *model.Registry, rec *recorder) *model.Library {
	reg.Register("pa", tracked(rec, "a"))
	reg.Register("pb", tracked(rec, "b"))
	reg.Register("pc", tracked(rec, "c"))
	s := model.NewSchema("Lin").
		Step("A", "pa").Step("B", "pb").Step("C", "pc").
		Seq("A", "B", "C").
		MustBuild()
	lib := model.NewLibrary()
	lib.Add(s)
	return lib
}

func TestInstancesSpreadAcrossEngines(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	lib := linLib(reg, rec)
	sys := newSystem(t, 4, lib, reg)

	const n = 8
	ids := make([]int, n)
	for i := range ids {
		id, err := sys.Start("Lin", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	for _, id := range ids {
		if st, err := sys.Wait("Lin", id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("instance %d = (%v, %v)", id, st, err)
		}
	}
	if rec.count("a") != n || rec.count("c") != n {
		t.Errorf("executions = %v", rec.list())
	}
	// Round robin: every engine owns two instances, so every engine carries
	// normal-execution load.
	loaded := 0
	for i := 0; i < 4; i++ {
		name := sys.engines[i].Name()
		if sys.Collector().NodeLoad(name, metrics.Normal) > 0 {
			loaded++
		}
	}
	if loaded != 4 {
		t.Errorf("engines with load = %d, want 4", loaded)
	}
	// Per-instance message count matches the centralized model (2·s·a = 12).
	deadline := time.Now().Add(waitTimeout)
	for sys.Collector().Messages(metrics.Normal) < int64(n*12) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sys.Collector().Messages(metrics.Normal); got != int64(n*12) {
		t.Errorf("normal messages = %d, want %d", got, n*12)
	}
}

func TestSingleEngineDegeneratesToCentral(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	lib := linLib(reg, rec)
	sys := newSystem(t, 1, lib, reg)
	id, st, err := sys.Run("Lin", nil, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("run = (%d, %v, %v)", id, st, err)
	}
	if got := sys.Collector().Messages(metrics.Coordination); got != 0 {
		t.Errorf("coordination messages with e=1 = %d, want 0", got)
	}
}

func TestFailureHandlingPerEngine(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	reg.Register("pa", tracked(rec, "a"))
	reg.Register("pb", model.FailNTimes(1, tracked(rec, "b")))
	s := model.NewSchema("F").
		Step("A", "pa").Step("B", "pb").Seq("A", "B").
		OnFailure("B", "A", 3).
		MustBuild()
	lib := model.NewLibrary()
	lib.Add(s)
	sys := newSystem(t, 2, lib, reg)
	_, st, err := sys.Run("F", nil, waitTimeout)
	if err != nil || st != wfdb.Committed {
		t.Fatalf("run = (%v, %v)", st, err)
	}
	if rec.count("a") != 1 {
		t.Errorf("A reused? executed %d times: %v", rec.count("a"), rec.list())
	}
}

// TestRelativeOrderAcrossEngines places the leading and lagging instances on
// different engines: ordering must hold and must cost physical messages.
func TestRelativeOrderAcrossEngines(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	reg.Register("pa1", tracked(rec, "a1"))
	reg.Register("pb1", tracked(rec, "b1"))
	reg.Register("pa2", tracked(rec, "a2"))
	reg.Register("pb2", func(*model.ProgramContext) (map[string]expr.Value, error) {
		<-gate
		rec.add("b2")
		return nil, nil
	})
	wf1 := model.NewSchema("O1").
		Step("A1", "pa1", model.WithAgents("a1")).
		Step("B1", "pb1", model.WithAgents("a1")).
		Seq("A1", "B1").MustBuild()
	wf2 := model.NewSchema("O2").
		Step("A2", "pa2", model.WithAgents("a2")).
		Step("B2", "pb2", model.WithAgents("a2")).
		Seq("A2", "B2").MustBuild()
	lib := model.NewLibrary()
	lib.Add(wf1)
	lib.Add(wf2)
	lib.AddCoord(model.CoordSpec{
		Kind: model.RelativeOrder,
		Name: "orders",
		Pairs: []model.ConflictPair{
			{A: model.StepRef{Workflow: "O1", Step: "A1"}, B: model.StepRef{Workflow: "O2", Step: "A2"}},
			{A: model.StepRef{Workflow: "O1", Step: "B1"}, B: model.StepRef{Workflow: "O2", Step: "B2"}},
		},
	})
	sys := newSystem(t, 2, lib, reg)

	// First Start lands on engine0, second on engine1.
	id2, err := sys.Start("O2", nil) // engine0: leader (completes A2 first)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTimeout)
	for rec.count("a2") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("a2 never ran")
		}
		time.Sleep(time.Millisecond)
	}
	id1, err := sys.Start("O1", nil) // engine1: lagging
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if rec.count("b1") != 0 {
		t.Fatalf("lagging B1 ran before leading B2: %v", rec.list())
	}
	close(gate)
	if st, err := sys.Wait("O2", id2, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("O2 = (%v, %v)", st, err)
	}
	if st, err := sys.Wait("O1", id1, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("O1 = (%v, %v)", st, err)
	}
	if rec.index("b2") > rec.index("b1") {
		t.Errorf("relative order violated: %v", rec.list())
	}
	// Cross-engine coordination requires physical messages (Table 5 vs 4).
	if got := sys.Collector().Messages(metrics.Coordination); got == 0 {
		t.Error("expected coordination messages in parallel control")
	}
}

func TestMutexAcrossEngines(t *testing.T) {
	reg := model.NewRegistry()
	var mu sync.Mutex
	inCrit, maxCrit := 0, 0
	crit := func(*model.ProgramContext) (map[string]expr.Value, error) {
		mu.Lock()
		inCrit++
		if inCrit > maxCrit {
			maxCrit = inCrit
		}
		mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		inCrit--
		mu.Unlock()
		return nil, nil
	}
	reg.Register("px", crit)
	reg.Register("py", crit)
	a := model.NewSchema("MA").Step("X", "px").MustBuild()
	b := model.NewSchema("MB").Step("Y", "py").MustBuild()
	lib := model.NewLibrary()
	lib.Add(a)
	lib.Add(b)
	lib.AddCoord(model.CoordSpec{
		Kind: model.Mutex,
		Name: "res",
		MutexSteps: []model.StepRef{
			{Workflow: "MA", Step: "X"},
			{Workflow: "MB", Step: "Y"},
		},
	})
	sys := newSystem(t, 3, lib, reg)

	type ref struct {
		wf string
		id int
	}
	var refs []ref
	for i := 0; i < 3; i++ {
		ida, err := sys.Start("MA", nil)
		if err != nil {
			t.Fatal(err)
		}
		idb, err := sys.Start("MB", nil)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref{"MA", ida}, ref{"MB", idb})
	}
	for _, r := range refs {
		if st, err := sys.Wait(r.wf, r.id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("%s.%d = (%v, %v)", r.wf, r.id, st, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if maxCrit != 1 {
		t.Errorf("max concurrent critical sections = %d, want 1", maxCrit)
	}
}

func TestRollbackDependencyAcrossEngines(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	gate := make(chan struct{})
	var gateOnce sync.Once
	reg.Register("px1", tracked(rec, "x1"))
	reg.Register("px2", model.FailNTimes(1, tracked(rec, "x2")))
	reg.Register("py1", tracked(rec, "y1"))
	reg.Register("cy1", tracked(rec, "cy1"))
	reg.Register("py2", func(*model.ProgramContext) (map[string]expr.Value, error) {
		gateOnce.Do(func() { <-gate })
		rec.add("y2")
		return nil, nil
	})
	x := model.NewSchema("X").
		Step("X1", "px1", model.WithAgents("a1")).
		Step("X2", "px2", model.WithAgents("a1")).
		Seq("X1", "X2").
		OnFailure("X2", "X1", 3).
		MustBuild()
	y := model.NewSchema("Y").
		Step("Y1", "py1", model.WithCompensation("cy1"), model.WithReexecCond("true"), model.WithAgents("a1")).
		Step("Y2", "py2", model.WithAgents("a2")).
		Seq("Y1", "Y2").
		MustBuild()
	lib := model.NewLibrary()
	lib.Add(x)
	lib.Add(y)
	lib.AddCoord(model.CoordSpec{
		Kind:    model.RollbackDep,
		Name:    "dep",
		Trigger: model.StepRef{Workflow: "X", Step: "X1"},
		Target:  model.StepRef{Workflow: "Y", Step: "Y1"},
	})
	sys := newSystem(t, 2, lib, reg)

	idY, err := sys.Start("Y", nil) // engine0
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitTimeout)
	for rec.count("y1") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("y1 never ran")
		}
		time.Sleep(time.Millisecond)
	}
	idX, err := sys.Start("X", nil) // engine1
	if err != nil {
		t.Fatal(err)
	}
	if st, err := sys.Wait("X", idX, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("X = (%v, %v)", st, err)
	}
	// Give the cross-engine rollback order time to land before releasing Y2.
	deadline = time.Now().Add(waitTimeout)
	for rec.count("cy1") == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if st, err := sys.Wait("Y", idY, waitTimeout); err != nil || st != wfdb.Committed {
		t.Fatalf("Y = (%v, %v)", st, err)
	}
	if rec.count("cy1") != 1 || rec.count("y1") != 2 {
		t.Errorf("dependent rollback not applied: cy1=%d y1=%d: %v",
			rec.count("cy1"), rec.count("y1"), rec.list())
	}
}

func TestConfigValidation(t *testing.T) {
	reg := model.NewRegistry()
	reg.Register("p", model.NopProgram())
	lib := model.NewLibrary()
	lib.Add(model.NewSchema("W").Step("A", "p").MustBuild())

	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := NewSystem(SystemConfig{Library: lib, Programs: reg, Engines: 2, DBs: []*wfdb.DB{wfdb.NewMemory()}}); err == nil {
		t.Error("mismatched DBs length should fail")
	}
	// Engines < 1 coerces to 1.
	sys, err := NewSystem(SystemConfig{Library: lib, Programs: reg, Engines: 0, Agents: []string{"a1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Engines() != 1 {
		t.Errorf("Engines() = %d, want 1", sys.Engines())
	}
}

func TestRetirementEvictsOwnerMap(t *testing.T) {
	rec := &recorder{}
	reg := model.NewRegistry()
	lib := linLib(reg, rec)
	sys := newSystem(t, 3, lib, reg)

	const n = 9
	ids := make([]int, 0, n)
	for i := 0; i < n; i++ {
		id, err := sys.Start("Lin", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if st, err := sys.Wait("Lin", id, waitTimeout); err != nil || st != wfdb.Committed {
			t.Fatalf("Lin.%d = (%v, %v)", id, st, err)
		}
	}
	// Every instance retired: the routing table holds no refs and no engine
	// holds live state, yet the API still answers from the shared archive.
	if got := sys.owner.Len(); got != 0 {
		t.Fatalf("owner map holds %d refs after retirement", got)
	}
	for i := 0; i < sys.Engines(); i++ {
		if live := sys.engines[i].LiveInstances(); live != 0 {
			t.Fatalf("engine %d still holds %d live instances", i, live)
		}
	}
	for _, id := range ids {
		if st, ok := sys.Status("Lin", id); !ok || st != wfdb.Committed {
			t.Fatalf("Status(%d) = (%v, %v)", id, st, ok)
		}
		snap, ok := sys.Snapshot("Lin", id)
		if !ok || snap.Status != wfdb.Committed {
			t.Fatalf("Snapshot(%d) missing after retirement", id)
		}
	}
}
