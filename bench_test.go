package crew_test

// The benchmark harness regenerates every table of the paper's evaluation
// (§6): per-instance scheduling-node load and physical message counts for
// the centralized (Table 4), parallel (Table 5) and distributed (Table 6)
// architectures, the architecture ranking (Table 7), the parameter sweeps
// behind the section's scaling claims, and the ablations of the design
// choices DESIGN.md calls out (OCR vs Saga-style recovery, deterministic vs
// explicit successor election).
//
// Custom metrics reported per benchmark:
//
//	msgs/inst        physical messages per workflow instance (normal)
//	coordmsgs/inst   coordination messages per instance
//	failmsgs/inst    failure-handling messages per instance
//	load/inst        load units per scheduling node per instance (l units)
//
// Run with: go test -bench=. -benchmem

import (
	"strconv"
	"testing"
	"time"

	"crew/internal/analysis"
	"crew/internal/experiment"
)

// benchParams is the Table 3 point used by the benchmarks: scaled down in c
// and i for wall-clock reasons but with every mechanism active. The paper's
// shape claims (who wins, by what factor) are preserved; EXPERIMENTS.md
// records runs at larger points too.
func benchParams() analysis.Parameters {
	p := analysis.Default()
	p.C = 4  // schemas (paper: 20)
	p.S = 10 // steps per workflow
	p.E = 4  // engines
	p.Z = 10 // agents
	p.A = 2
	p.F = 2
	p.R = 3
	p.W = 2
	p.ME, p.RO, p.RD = 1, 2, 1
	p.PF, p.PI, p.PA, p.PR = 0.1, 0.025, 0.025, 0.25
	return p
}

const benchInstances = 4

func runBench(b *testing.B, opt experiment.Options) *experiment.Measured {
	b.Helper()
	b.ReportAllocs()
	if opt.Instances == 0 {
		opt.Instances = benchInstances
	}
	if opt.Timeout == 0 {
		opt.Timeout = 120 * time.Second
	}
	var last *experiment.Measured
	var totalInstances int
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(100 + i)
		m, err := experiment.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		last = m
		totalInstances += m.Instances
	}
	b.ReportMetric(last.MsgsPerInstance[analysis.RowNormal], "msgs/inst")
	b.ReportMetric(last.MsgsPerInstance[analysis.RowCoord], "coordmsgs/inst")
	b.ReportMetric(last.MsgsPerInstance[analysis.RowFailure], "failmsgs/inst")
	b.ReportMetric(last.LoadPerInstance[analysis.RowNormal], "load/inst")
	b.ReportMetric(float64(totalInstances)/b.Elapsed().Seconds(), "inst/sec")
	return last
}

// BenchmarkTable3Defaults measures the analytic model itself (Table 3
// parameters through the Tables 4-6 expressions) — microseconds, included
// for completeness of the per-table index.
func BenchmarkTable3Defaults(b *testing.B) {
	b.ReportAllocs()
	p := analysis.Default()
	for i := 0; i < b.N; i++ {
		for _, arch := range analysis.Architectures {
			_ = analysis.LoadPerInstance(arch, p)
			_ = analysis.MessagesPerInstance(arch, p)
		}
	}
}

// BenchmarkTable4Centralized regenerates Table 4: centralized control.
func BenchmarkTable4Centralized(b *testing.B) {
	runBench(b, experiment.Options{Arch: analysis.Central, Params: benchParams()})
}

// BenchmarkTable5Parallel regenerates Table 5: parallel control.
func BenchmarkTable5Parallel(b *testing.B) {
	runBench(b, experiment.Options{Arch: analysis.Parallel, Params: benchParams()})
}

// BenchmarkTable6Distributed regenerates Table 6: distributed control.
func BenchmarkTable6Distributed(b *testing.B) {
	runBench(b, experiment.Options{Arch: analysis.Distributed, Params: benchParams()})
}

// BenchmarkTable7Ranking regenerates Table 7: it measures all three
// architectures and checks the recommended ordering (distributed leads on
// load; centralized wins messages once coordination dominates).
func BenchmarkTable7Ranking(b *testing.B) {
	b.ReportAllocs()
	p := benchParams()
	var totalInstances int
	for i := 0; i < b.N; i++ {
		results := make(map[analysis.Architecture]*experiment.Measured, 3)
		for _, arch := range analysis.Architectures {
			m, err := experiment.Run(experiment.Options{
				Arch: arch, Params: p, Instances: benchInstances,
				Seed: int64(300 + i), Timeout: 120 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			results[arch] = m
			totalInstances += m.Instances
		}
		rk := experiment.RankMeasured(results, analysis.NormalOnly, true)
		if rk.Order[0] != analysis.Distributed {
			b.Fatalf("measured load ranking = %v, want Distributed first", rk.Order)
		}
	}
	b.ReportMetric(float64(totalInstances)/b.Elapsed().Seconds(), "inst/sec")
}

// BenchmarkSweepAgents sweeps z (distributed agents): per-node load should
// fall roughly as 1/z (the paper's scalability claim for normal execution).
func BenchmarkSweepAgents(b *testing.B) {
	for _, z := range []int{4, 8, 16} {
		z := z
		b.Run(sweepName("z", z), func(b *testing.B) {
			p := benchParams()
			p.Z = z
			runBench(b, experiment.Options{Arch: analysis.Distributed, Params: p})
		})
	}
}

// BenchmarkSweepSteps sweeps s: messages grow linearly in s for all
// architectures (2·s·a centralized vs s·a+f distributed).
func BenchmarkSweepSteps(b *testing.B) {
	for _, s := range []int{5, 10, 15} {
		s := s
		b.Run(sweepName("s", s), func(b *testing.B) {
			p := benchParams()
			p.S = s
			runBench(b, experiment.Options{Arch: analysis.Distributed, Params: p})
		})
	}
}

// BenchmarkSweepCoordination sweeps the coordination density (me+ro+rd):
// the §6 crossover — centralized needs no coordination messages while
// parallel/distributed pay per coordinated step.
func BenchmarkSweepCoordination(b *testing.B) {
	for _, ro := range []int{0, 2, 4} {
		ro := ro
		b.Run(sweepName("ro", ro), func(b *testing.B) {
			p := benchParams()
			p.RO = ro
			runBench(b, experiment.Options{Arch: analysis.Distributed, Params: p})
		})
	}
}

// BenchmarkAblationOCR compares the opportunistic compensation and
// re-execution strategy against the Saga-style complete compensation and
// re-execution fallback on a failure-heavy point.
func BenchmarkAblationOCR(b *testing.B) {
	p := benchParams()
	p.PF = 0.25
	p.ME, p.RO, p.RD = 0, 0, 0
	b.Run("ocr", func(b *testing.B) {
		runBench(b, experiment.Options{Arch: analysis.Central, Params: p})
	})
	b.Run("saga", func(b *testing.B) {
		runBench(b, experiment.Options{Arch: analysis.Central, Params: p, DisableOCR: true})
	})
}

// BenchmarkAblationElection compares the zero-message deterministic
// successor election against the explicit StateInformation exchange.
func BenchmarkAblationElection(b *testing.B) {
	p := benchParams()
	p.PF, p.PI, p.PA = 0, 0, 0
	p.ME, p.RO, p.RD = 0, 0, 0
	b.Run("deterministic", func(b *testing.B) {
		runBench(b, experiment.Options{Arch: analysis.Distributed, Params: p})
	})
	b.Run("stateinformation", func(b *testing.B) {
		runBench(b, experiment.Options{Arch: analysis.Distributed, Params: p, ExplicitElection: true})
	})
}

// BenchmarkFigure3Recovery measures the Figure 3 scenario end to end
// (failure, partial rollback, branch switch, abandoned-branch compensation)
// in distributed control, via failure-handling message counts.
func BenchmarkFigure3Recovery(b *testing.B) {
	p := benchParams()
	p.PF = 0.3
	p.ME, p.RO, p.RD = 0, 0, 0
	runBench(b, experiment.Options{Arch: analysis.Distributed, Params: p})
}

func sweepName(param string, v int) string {
	return param + "=" + strconv.Itoa(v)
}
